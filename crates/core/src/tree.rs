//! Decision tree structure, growth and prediction.

use serde::{Deserialize, Serialize};

/// Index of a node within its tree's arena.
pub type NodeId = u32;

/// Sentinel for "no node".
pub const NO_NODE: NodeId = u32::MAX;

/// A chosen split point: `(feature, value)` pair in the paper's terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitData {
    /// Feature column to test.
    pub feature: u32,
    /// Rows whose bin id is `<= bin` go left.
    pub bin: u8,
    /// The raw-value threshold equivalent to `bin` (inclusive upper bound):
    /// `value <= threshold` goes left.
    pub threshold: f32,
    /// Direction for rows whose feature is missing.
    pub default_left: bool,
    /// Loss reduction of this split (Eq. 3).
    pub gain: f64,
}

/// Gradient statistics of the rows in a node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    /// Sum of first-order gradients `G`.
    pub g: f64,
    /// Sum of second-order gradients `H`.
    pub h: f64,
    /// Number of rows.
    pub count: u32,
}

impl NodeStats {
    /// The optimal leaf weight `w* = -G / (H + λ)` (Eq. 2), unscaled by the
    /// learning rate.
    pub fn optimal_weight(&self, lambda: f64) -> f64 {
        -self.g / (self.h + lambda)
    }

    /// The structure-score term `G² / (H + λ)` used by the gain formula.
    pub fn score(&self, lambda: f64) -> f64 {
        self.g * self.g / (self.h + lambda)
    }

    /// Element-wise difference (`parent − sibling` for the other child).
    pub fn minus(&self, other: &NodeStats) -> NodeStats {
        NodeStats { g: self.g - other.g, h: self.h - other.h, count: self.count - other.count }
    }
}

/// One tree node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Parent id, `NO_NODE` for the root.
    pub parent: NodeId,
    /// Left child id, `NO_NODE` for leaves.
    pub left: NodeId,
    /// Right child id, `NO_NODE` for leaves.
    pub right: NodeId,
    /// Depth (root = 0).
    pub depth: u32,
    /// The split applied at this node (`None` for leaves).
    pub split: Option<SplitData>,
    /// Leaf weight, already scaled by the learning rate. Valid for leaves.
    pub weight: f32,
    /// Gradient statistics of the rows reaching this node.
    pub stats: NodeStats,
}

impl Node {
    /// Whether this node is currently a leaf.
    pub fn is_leaf(&self) -> bool {
        self.left == NO_NODE
    }
}

/// A regression tree stored as an arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Creates a tree holding just a root with `stats`.
    pub fn new_root(stats: NodeStats) -> Self {
        Self {
            nodes: vec![Node {
                parent: NO_NODE,
                left: NO_NODE,
                right: NO_NODE,
                depth: 0,
                split: None,
                weight: 0.0,
                stats,
            }],
        }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Depth of the deepest node.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// All node ids of current leaves.
    pub fn leaf_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_leaf())
            .map(|(i, _)| i as NodeId)
    }

    /// Splits `id`, appending two children with the given statistics.
    /// Returns `(left_id, right_id)`.
    ///
    /// # Panics
    /// Panics if `id` is already split.
    pub fn apply_split(
        &mut self,
        id: NodeId,
        split: SplitData,
        left_stats: NodeStats,
        right_stats: NodeStats,
    ) -> (NodeId, NodeId) {
        assert!(self.node(id).is_leaf(), "node {id} already split");
        let depth = self.node(id).depth + 1;
        let left = self.nodes.len() as NodeId;
        let right = left + 1;
        for stats in [left_stats, right_stats] {
            self.nodes.push(Node {
                parent: id,
                left: NO_NODE,
                right: NO_NODE,
                depth,
                split: None,
                weight: 0.0,
                stats,
            });
        }
        let node = self.node_mut(id);
        node.split = Some(split);
        node.left = left;
        node.right = right;
        (left, right)
    }

    /// Routes a row to its leaf. `value(f)` returns the raw feature value or
    /// `None` for missing.
    pub fn route(&self, value: impl Fn(u32) -> Option<f32>) -> NodeId {
        let mut id = 0 as NodeId;
        loop {
            let node = self.node(id);
            let Some(split) = &node.split else {
                return id;
            };
            let go_left = match value(split.feature) {
                Some(v) => v <= split.threshold,
                None => split.default_left,
            };
            id = if go_left { node.left } else { node.right };
        }
    }

    /// The prediction for a row (leaf weight after routing).
    pub fn predict(&self, value: impl Fn(u32) -> Option<f32>) -> f32 {
        self.node(self.route(value)).weight
    }

    /// Accumulates per-feature split gain and count into the provided
    /// buffers (for feature-importance reports).
    pub fn accumulate_importance(&self, gain: &mut [f64], count: &mut [u64]) {
        for n in &self.nodes {
            if let Some(s) = &n.split {
                gain[s.feature as usize] += s.gain;
                count[s.feature as usize] += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(g: f64, h: f64, count: u32) -> NodeStats {
        NodeStats { g, h, count }
    }

    fn split_on(feature: u32, threshold: f32, default_left: bool) -> SplitData {
        SplitData { feature, bin: 0, threshold, default_left, gain: 1.0 }
    }

    #[test]
    fn root_tree_is_single_leaf() {
        let t = Tree::new_root(stats(1.0, 2.0, 3));
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.max_depth(), 0);
        assert!(t.node(0).is_leaf());
    }

    #[test]
    fn apply_split_creates_children() {
        let mut t = Tree::new_root(stats(3.0, 4.0, 10));
        let (l, r) =
            t.apply_split(0, split_on(2, 0.5, true), stats(1.0, 2.0, 6), stats(2.0, 2.0, 4));
        assert_eq!((l, r), (1, 2));
        assert_eq!(t.n_leaves(), 2);
        assert_eq!(t.node(l).depth, 1);
        assert_eq!(t.node(l).parent, 0);
        assert!(!t.node(0).is_leaf());
    }

    #[test]
    #[should_panic(expected = "already split")]
    fn double_split_panics() {
        let mut t = Tree::new_root(stats(0.0, 1.0, 2));
        let s = split_on(0, 0.5, true);
        t.apply_split(0, s, stats(0.0, 0.5, 1), stats(0.0, 0.5, 1));
        t.apply_split(0, s, stats(0.0, 0.5, 1), stats(0.0, 0.5, 1));
    }

    #[test]
    fn routing_follows_thresholds_and_defaults() {
        let mut t = Tree::new_root(stats(0.0, 1.0, 4));
        let (l, _r) =
            t.apply_split(0, split_on(0, 0.5, false), stats(0.0, 0.5, 2), stats(0.0, 0.5, 2));
        t.apply_split(l, split_on(1, 2.0, true), stats(0.0, 0.2, 1), stats(0.0, 0.3, 1));
        // (f0 = 0.4, f1 = 5.0) -> left at root, right at l -> node 4.
        assert_eq!(t.route(|f| Some(if f == 0 { 0.4 } else { 5.0 })), 4);
        // f0 exactly at threshold goes left.
        assert_eq!(t.route(|f| Some(if f == 0 { 0.5 } else { 1.0 })), 3);
        // f0 missing routes right (default_left = false) -> node 2.
        assert_eq!(t.route(|f| if f == 0 { None } else { Some(0.0) }), 2);
        // f1 missing at node l routes left (default_left = true) -> node 3.
        assert_eq!(t.route(|f| if f == 0 { Some(0.0) } else { None }), 3);
    }

    #[test]
    fn predict_returns_leaf_weight() {
        let mut t = Tree::new_root(stats(0.0, 1.0, 2));
        let (l, r) =
            t.apply_split(0, split_on(0, 0.0, true), stats(0.0, 0.5, 1), stats(0.0, 0.5, 1));
        t.node_mut(l).weight = -1.5;
        t.node_mut(r).weight = 2.5;
        assert_eq!(t.predict(|_| Some(-1.0)), -1.5);
        assert_eq!(t.predict(|_| Some(1.0)), 2.5);
    }

    #[test]
    fn stats_weight_and_score() {
        let s = stats(-4.0, 3.0, 7);
        assert!((s.optimal_weight(1.0) - 1.0).abs() < 1e-12);
        assert!((s.score(1.0) - 4.0).abs() < 1e-12);
        let diff = s.minus(&stats(-1.0, 1.0, 3));
        assert_eq!(diff, stats(-3.0, 2.0, 4));
    }

    #[test]
    fn importance_accumulates_gains() {
        let mut t = Tree::new_root(stats(0.0, 1.0, 4));
        let (l, _) = t.apply_split(
            0,
            SplitData { feature: 1, bin: 0, threshold: 0.0, default_left: true, gain: 3.0 },
            stats(0.0, 0.5, 2),
            stats(0.0, 0.5, 2),
        );
        t.apply_split(
            l,
            SplitData { feature: 1, bin: 0, threshold: 0.0, default_left: true, gain: 2.0 },
            stats(0.0, 0.2, 1),
            stats(0.0, 0.3, 1),
        );
        let mut gain = vec![0.0; 3];
        let mut count = vec![0; 3];
        t.accumulate_importance(&mut gain, &mut count);
        assert_eq!(gain, vec![0.0, 5.0, 0.0]);
        assert_eq!(count, vec![0, 2, 0]);
    }

    #[test]
    fn leaf_ids_tracks_growth() {
        let mut t = Tree::new_root(stats(0.0, 1.0, 2));
        assert_eq!(t.leaf_ids().collect::<Vec<_>>(), vec![0]);
        t.apply_split(0, split_on(0, 0.0, true), stats(0.0, 0.5, 1), stats(0.0, 0.5, 1));
        assert_eq!(t.leaf_ids().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut t = Tree::new_root(stats(1.0, 2.0, 3));
        t.apply_split(0, split_on(4, 0.25, false), stats(0.5, 1.0, 2), stats(0.5, 1.0, 1));
        let json = serde_json::to_string(&t).unwrap();
        let back: Tree = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_nodes(), 3);
        assert_eq!(back.node(0).split.unwrap().feature, 4);
    }
}
