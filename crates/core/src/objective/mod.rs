//! The open objective layer: gradient boosting is objective-agnostic by
//! construction — every tree fits second-order pairs `(gᵢ, hᵢ)` (Eq. 1) —
//! so the loss is a plug-in point, not a hard-coded enum.
//!
//! Three pieces:
//!
//! * [`Objective`] — the object-safe trait: per-row or listwise gradient
//!   pairs, group count, label validation, data-derived base scores, score
//!   transform, and a preferred [`EvalMetric`].
//! * [`ObjectiveSpec`] — the serde-stable registry of named objective
//!   specs. This is what models and [`crate::TrainParams`] store (the field
//!   keeps its historical name `loss`, and the three original variants keep
//!   their exact serialized shape), what the CLI `--loss` strings parse
//!   into, and what [`ObjectiveSpec::build`] turns into a live objective.
//! * [`compute_gradients_group`] — the gradient-phase driver: the parallel
//!   chunked fill loop, the centralized Hessian floor, and the per-row
//!   weight/subsample scaling. Objectives return *raw* pairs; numerical
//!   protection is uniform and lives here, not in each impl.
//!
//! The split between [`RowWiseGrad`] and [`ListwiseGrad`] makes the old
//! "softmax panics in the scalar `grad` path" bug unrepresentable: grouped
//! and listwise objectives simply do not expose a scalar entry point, and
//! the driver dispatches on [`Objective::gradients`] instead of matching an
//! enum.
//!
//! Adding an objective (see DESIGN.md §12): implement [`Objective`] plus
//! one of the gradient traits, add a [`ObjectiveSpec`] variant with its
//! [`REGISTRY`] row, and wire `parse`/`name`/`build`. Everything else —
//! trainer, model persistence, CLI, eval — picks it up through the trait.

mod builtin;
mod ranking;
mod regression;

pub use builtin::{LogisticObjective, SoftmaxObjective, SquaredErrorObjective};
pub use ranking::LambdaRankObjective;
pub use regression::{HuberObjective, QuantileObjective, TweedieObjective};

use crate::loss::{GradPair, RowScaling};
use crate::trainer::EvalMetric;
use harp_parallel::ThreadPool;
use serde::{Deserialize, Serialize};

/// Uniform lower bound on every objective's Hessian, applied by the
/// gradient-phase driver. Leaf weights divide by `H + λ`; with `λ = 0` a
/// zero Hessian would blow up, so the floor protects every objective —
/// including user impls — without each one clamping ad hoc.
pub const HESSIAN_FLOOR: f32 = 1e-16;

/// A named, serializable objective specification — the registry key that
/// round-trips through saved models and CLI `--loss` strings.
///
/// The historical name [`crate::LossKind`] is a type alias to this enum;
/// the first three variants keep their exact serialized representation so
/// models written before the objective layer existed still load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObjectiveSpec {
    /// Binary logistic regression (the paper's setting for all tasks).
    Logistic,
    /// Squared-error regression.
    SquaredError,
    /// Multiclass softmax: one tree per class per boosting round.
    Softmax {
        /// Number of classes (>= 2). Labels are class ids `0..n_classes`.
        n_classes: u32,
    },
    /// Quantile regression under the pinball loss: the model estimates the
    /// `alpha`-quantile of `y | x` instead of the mean.
    Quantile {
        /// Target quantile in `(0, 1)`; `0.5` is median regression.
        alpha: f32,
    },
    /// Tweedie regression for zero-inflated non-negative targets
    /// (compound Poisson–gamma, e.g. insurance claim amounts). Raw scores
    /// are log-means; predictions are `exp(raw)`.
    Tweedie {
        /// Variance power in `(1, 2)`: `→1` is Poisson-like, `→2`
        /// gamma-like.
        power: f32,
    },
    /// Huber (robust) regression: quadratic near zero, linear in the
    /// tails, so gross outliers contribute bounded gradients.
    Huber {
        /// Residual half-width of the quadratic region (> 0).
        delta: f32,
    },
    /// LambdaMART ranking: pairwise lambda gradients weighted by
    /// |ΔNDCG@k|, computed per query group. Requires query-group sizes on
    /// the training (and eval) data.
    LambdaRank {
        /// NDCG truncation depth (>= 1) for both gradients and the metric.
        k: u32,
    },
}

/// One row of the objective registry: the canonical `--loss` name, its
/// argument syntax, and a one-line summary for help text.
pub struct ObjectiveInfo {
    /// Canonical bare name, e.g. `"quantile"`.
    pub name: &'static str,
    /// Spec syntax, e.g. `"quantile:A"`.
    pub syntax: &'static str,
    /// One-line description for `--help`.
    pub summary: &'static str,
}

/// The registry of every named objective. CLI parsing, error messages, and
/// help text derive from this table, so the accepted-name list cannot
/// drift from the real set.
pub const REGISTRY: &[ObjectiveInfo] = &[
    ObjectiveInfo {
        name: "logistic",
        syntax: "logistic",
        summary: "binary logistic regression (labels 0/1; metric: AUC)",
    },
    ObjectiveInfo {
        name: "squared",
        syntax: "squared",
        summary: "squared-error regression (metric: RMSE)",
    },
    ObjectiveInfo {
        name: "softmax",
        syntax: "softmax:C",
        summary: "C-class softmax, one tree per class per round (metric: mlogloss)",
    },
    ObjectiveInfo {
        name: "quantile",
        syntax: "quantile:A",
        summary: "pinball-loss quantile regression at alpha A in (0,1) (metric: pinball)",
    },
    ObjectiveInfo {
        name: "tweedie",
        syntax: "tweedie:P",
        summary: "Tweedie regression, variance power P in (1,2) (metric: deviance)",
    },
    ObjectiveInfo {
        name: "huber",
        syntax: "huber:D",
        summary: "Huber robust regression with transition width D > 0 (metric: huber)",
    },
    ObjectiveInfo {
        name: "lambdarank",
        syntax: "lambdarank:K",
        summary: "LambdaMART ranking over query groups (metric: ndcg@K)",
    },
];

/// The `A|B|C` summary of accepted `--loss` syntaxes, derived from
/// [`REGISTRY`].
pub fn registry_names() -> String {
    REGISTRY.iter().map(|i| i.syntax).collect::<Vec<_>>().join("|")
}

/// Multi-line registry listing for `--help` output.
pub fn registry_help() -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for info in REGISTRY {
        let _ = writeln!(s, "  {:<14} {}", info.syntax, info.summary);
    }
    s
}

impl ObjectiveSpec {
    /// Parses a spec string (`"logistic"`, `"softmax:4"`, `"quantile:0.9"`,
    /// `"tweedie:1.5"`, `"huber:2"`, `"lambdarank:10"`). Parameterized
    /// objectives accept a bare name with a conventional default
    /// (`quantile` → 0.5, `tweedie` → 1.5, `huber` → 1.0,
    /// `lambdarank` → 10).
    ///
    /// # Errors
    /// Returns a message listing the registry (derived from [`REGISTRY`],
    /// so it cannot drift) for unknown names, and a field-specific message
    /// for bad parameters.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        fn param<T: std::str::FromStr>(
            arg: Option<&str>,
            default: T,
            what: &str,
        ) -> Result<T, String> {
            match arg {
                None => Ok(default),
                Some(a) => a.parse().map_err(|_| format!("bad {what} {a:?}")),
            }
        }
        let spec = match name {
            "logistic" if arg.is_none() => Self::Logistic,
            "squared" if arg.is_none() => Self::SquaredError,
            "softmax" => {
                let Some(a) = arg else {
                    return Err("softmax needs a class count (softmax:C)".into());
                };
                let n_classes =
                    a.parse().map_err(|_| format!("bad class count {a:?} in \"softmax:{a}\""))?;
                Self::Softmax { n_classes }
            }
            "quantile" => Self::Quantile { alpha: param(arg, 0.5, "quantile alpha")? },
            "tweedie" => Self::Tweedie { power: param(arg, 1.5, "tweedie power")? },
            "huber" => Self::Huber { delta: param(arg, 1.0, "huber delta")? },
            "lambdarank" => Self::LambdaRank { k: param(arg, 10, "ndcg truncation")? },
            _ => {
                return Err(format!("unknown loss {s:?} (expected {})", registry_names()));
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// The canonical spec string; `parse(name())` round-trips exactly
    /// (float parameters print with their shortest exact representation).
    pub fn name(&self) -> String {
        match *self {
            Self::Logistic => "logistic".into(),
            Self::SquaredError => "squared".into(),
            Self::Softmax { n_classes } => format!("softmax:{n_classes}"),
            Self::Quantile { alpha } => format!("quantile:{alpha}"),
            Self::Tweedie { power } => format!("tweedie:{power}"),
            Self::Huber { delta } => format!("huber:{delta}"),
            Self::LambdaRank { k } => format!("lambdarank:{k}"),
        }
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    /// Returns a message describing the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Logistic | Self::SquaredError => Ok(()),
            Self::Softmax { n_classes } => {
                if n_classes < 2 {
                    Err("softmax needs at least 2 classes".into())
                } else {
                    Ok(())
                }
            }
            Self::Quantile { alpha } => {
                if alpha > 0.0 && alpha < 1.0 {
                    Ok(())
                } else {
                    Err(format!("quantile alpha must be in (0, 1), got {alpha}"))
                }
            }
            Self::Tweedie { power } => {
                if power > 1.0 && power < 2.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "tweedie power must be in (1, 2) (compound Poisson-gamma), got {power}"
                    ))
                }
            }
            Self::Huber { delta } => {
                if delta > 0.0 && delta.is_finite() {
                    Ok(())
                } else {
                    Err(format!("huber delta must be positive and finite, got {delta}"))
                }
            }
            Self::LambdaRank { k } => {
                if k >= 1 {
                    Ok(())
                } else {
                    Err("lambdarank truncation k must be >= 1".into())
                }
            }
        }
    }

    /// Builds the live objective this spec names.
    ///
    /// # Panics
    /// Panics on an invalid spec; [`validate`](Self::validate) first (the
    /// trainer does, via `TrainParams::validate`).
    pub fn build(&self) -> Box<dyn Objective> {
        self.validate().expect("invalid objective spec");
        match *self {
            Self::Logistic => Box::new(LogisticObjective),
            Self::SquaredError => Box::new(SquaredErrorObjective),
            Self::Softmax { n_classes } => Box::new(SoftmaxObjective::new(n_classes)),
            Self::Quantile { alpha } => Box::new(QuantileObjective::new(alpha)),
            Self::Tweedie { power } => Box::new(TweedieObjective::new(power)),
            Self::Huber { delta } => Box::new(HuberObjective::new(delta)),
            Self::LambdaRank { k } => Box::new(LambdaRankObjective::new(k)),
        }
    }

    /// Number of parallel model groups (trees per boosting round): 1 for
    /// scalar objectives, `n_classes` for softmax.
    pub fn n_groups(self) -> usize {
        match self {
            Self::Softmax { n_classes } => n_classes as usize,
            _ => 1,
        }
    }

    /// The objective's preferred validation metric.
    pub fn default_metric(self) -> EvalMetric {
        match self {
            Self::Logistic => EvalMetric::Auc,
            Self::SquaredError => EvalMetric::Rmse,
            Self::Softmax { .. } => EvalMetric::MulticlassLogLoss,
            Self::Quantile { alpha } => EvalMetric::Pinball { alpha },
            Self::Tweedie { power } => EvalMetric::TweedieDeviance { power },
            Self::Huber { delta } => EvalMetric::HuberLoss { delta },
            Self::LambdaRank { k } => EvalMetric::NdcgAt { k },
        }
    }

    /// Converts one raw score to the response scale. Kept as a direct
    /// match (no boxing) because per-row prediction paths call it in a
    /// loop. Softmax rows need joint normalization — see
    /// [`transform_scores`](Self::transform_scores).
    #[inline]
    pub fn transform(self, raw: f32) -> f32 {
        match self {
            Self::Logistic => crate::loss::sigmoid(raw),
            Self::Tweedie { .. } => raw.exp(),
            _ => raw,
        }
    }

    /// Transforms a full row-major `n_rows × n_groups` raw-score buffer to
    /// the response scale through the built objective.
    pub fn transform_scores(self, raw: &[f32]) -> Vec<f32> {
        self.build().transform_scores(raw)
    }

    /// Per-group constant initial scores derived from the label
    /// distribution (log-odds for logistic, mean for squared error,
    /// per-class log priors for softmax, the empirical quantile/median for
    /// quantile/Huber, log-mean for Tweedie, zero for ranking).
    pub fn base_scores(self, labels: &[f32]) -> Vec<f32> {
        self.build().base_scores(labels)
    }

    /// Convenience: fills `out` with unweighted gradient pairs for a
    /// scalar row-wise objective (group 0, no subsampling). See
    /// [`compute_gradients_group`].
    ///
    /// # Panics
    /// Panics on shape mismatches or if the objective is listwise (no
    /// query groups are available through this entry point).
    pub fn compute_gradients(
        self,
        pool: &ThreadPool,
        preds: &[f32],
        labels: &[f32],
        out: &mut [GradPair],
    ) {
        let obj = self.build();
        compute_gradients_group(
            obj.as_ref(),
            pool,
            preds,
            labels,
            None,
            0,
            &RowScaling::default(),
            out,
        );
    }
}

/// The object-safe objective trait: everything the trainer, the model, and
/// the CLI need from a loss function.
///
/// Implementations also implement exactly one of [`RowWiseGrad`] or
/// [`ListwiseGrad`] and surface it through [`gradients`](Self::gradients);
/// the driver dispatches on that, so a grouped or listwise objective has
/// no scalar gradient entry point to panic in.
pub trait Objective: Send + Sync {
    /// The registry spec that rebuilds this objective.
    fn spec(&self) -> ObjectiveSpec;

    /// Trees per boosting round (1 unless one-vs-all grouped, e.g.
    /// softmax).
    fn n_groups(&self) -> usize {
        1
    }

    /// Checks labels (and required metadata such as query-group sizes)
    /// before training or evaluation.
    ///
    /// # Errors
    /// Returns a user-facing message describing the first offending row or
    /// missing metadata.
    fn validate_data(&self, labels: &[f32], query_groups: Option<&[u32]>) -> Result<(), String>;

    /// Per-group constant initial raw scores minimizing the loss over
    /// `labels` — the data-derived base score of the ensemble.
    fn base_scores(&self, labels: &[f32]) -> Vec<f32>;

    /// Transforms a row-major `n_rows × n_groups` raw-score buffer to the
    /// response scale.
    fn transform_scores(&self, raw: &[f32]) -> Vec<f32>;

    /// The objective's preferred validation metric.
    fn default_metric(&self) -> EvalMetric;

    /// How this objective computes gradients: row-wise (each row's pair
    /// depends only on that row) or listwise (pairs couple across rows of
    /// a query group).
    fn gradients(&self) -> GradientFn<'_>;
}

/// The gradient path of an objective — the dispatch point that replaces
/// the old panicking scalar/grouped split.
pub enum GradientFn<'a> {
    /// Row-independent: the driver parallelizes over row chunks.
    RowWise(&'a dyn RowWiseGrad),
    /// Whole-buffer: pairs couple across rows (ranking); the driver hands
    /// the objective the full scope and post-processes uniformly.
    Listwise(&'a dyn ListwiseGrad),
}

/// Row-wise first/second-order gradients.
pub trait RowWiseGrad: Sync {
    /// The *raw* `(g, h)` pair of model group `group` for one row.
    /// `scores` is the row's per-group raw-score slice (length
    /// `n_groups`; scalar objectives read `scores[0]`). Do not clamp `h`
    /// or apply sample weights — the driver does both.
    fn grad(&self, scores: &[f32], label: f32, group: usize) -> GradPair;
}

/// Listwise gradients over query groups.
pub trait ListwiseGrad: Sync {
    /// Fills `out` (one pair per row) with raw gradients for the whole
    /// buffer. Rows are grouped consecutively per `scope.query_groups`.
    /// Do not clamp `h` or apply sample weights — the driver does both.
    fn grads(&self, scope: &GradScope<'_>, out: &mut [GradPair]);
}

/// Everything a listwise objective sees: predictions, labels, and the
/// consecutive query-group sizes.
pub struct GradScope<'a> {
    /// Raw scores, row-major `n_rows × n_groups` (`n_groups = 1` for every
    /// current listwise objective).
    pub preds: &'a [f32],
    /// One label per row (graded relevance for ranking).
    pub labels: &'a [f32],
    /// Consecutive group sizes summing to `labels.len()`.
    pub query_groups: &'a [u32],
}

/// Fills `out` with the gradient pairs of model group `group` for all
/// rows, in parallel — the gradient-phase driver.
///
/// `preds` is row-major `n_rows × n_groups`. The driver owns the numerical
/// post-processing every objective gets uniformly, in this order per row:
/// raw `(g, h)` from the objective, the [`HESSIAN_FLOOR`] clamp on `h`,
/// then the [`RowScaling`] weight/subsample scale (excluded rows carry
/// zero mass). Listwise objectives fill the whole buffer first
/// (`query_groups` required), then the same clamp+scale pass runs.
///
/// # Panics
/// Panics on shape mismatches, or for a listwise objective without query
/// groups.
#[allow(clippy::too_many_arguments)]
pub fn compute_gradients_group(
    objective: &dyn Objective,
    pool: &ThreadPool,
    preds: &[f32],
    labels: &[f32],
    query_groups: Option<&[u32]>,
    group: usize,
    scaling: &RowScaling<'_>,
    out: &mut [GradPair],
) {
    let groups = objective.n_groups();
    assert!(group < groups, "group {group} out of range");
    assert_eq!(preds.len(), labels.len() * groups, "preds shape mismatch");
    assert_eq!(labels.len(), out.len(), "labels/out length mismatch");
    if let Some(w) = scaling.weights {
        assert_eq!(w.len(), labels.len(), "weights length mismatch");
    }
    let n = labels.len();
    if n == 0 {
        return;
    }
    match objective.gradients() {
        GradientFn::RowWise(rw) => {
            parallel_rows(pool, n, out, |r, gp| {
                let row = &preds[r * groups..(r + 1) * groups];
                let mut pair = rw.grad(row, labels[r], group);
                pair[1] = pair[1].max(HESSIAN_FLOOR);
                let scale = scaling.scale(r);
                pair[0] *= scale;
                pair[1] *= scale;
                *gp = pair;
            });
        }
        GradientFn::Listwise(lw) => {
            let qg = query_groups.unwrap_or_else(|| {
                panic!(
                    "objective {:?} is listwise and needs query-group sizes \
                     (Dataset::with_query_groups)",
                    objective.spec().name()
                )
            });
            assert_eq!(
                qg.iter().map(|&s| s as usize).sum::<usize>(),
                n,
                "query-group sizes must sum to the row count"
            );
            lw.grads(&GradScope { preds, labels, query_groups: qg }, out);
            parallel_rows(pool, n, out, |r, gp| {
                let mut pair = *gp;
                pair[1] = pair[1].max(HESSIAN_FLOOR);
                let scale = scaling.scale(r);
                pair[0] *= scale;
                pair[1] *= scale;
                *gp = pair;
            });
        }
    }
}

/// The chunked parallel fill loop shared by both gradient paths. Chunk
/// geometry is unchanged from the pre-trait implementation so gradient
/// buffers stay bitwise identical.
fn parallel_rows(
    pool: &ThreadPool,
    n: usize,
    out: &mut [GradPair],
    f: impl Fn(usize, &mut GradPair) + Sync,
) {
    let chunk = (n / (pool.num_threads() * 4)).max(1024);
    let n_chunks = n.div_ceil(chunk);
    // Chunks write disjoint ranges; reconstruct the range from the task
    // index and use raw slices through a shared pointer wrapper.
    struct SendPtr(*mut GradPair);
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}
    impl SendPtr {
        fn get(&self) -> *mut GradPair {
            self.0
        }
    }
    let base = SendPtr(out.as_mut_ptr());
    pool.parallel_for(n_chunks, |c, _| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        // SAFETY: chunks are disjoint ranges of `out`.
        let slice = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
        for (i, gp) in slice.iter_mut().enumerate() {
            f(lo + i, gp);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::sigmoid;
    use crate::params::LossKind;

    fn pool() -> ThreadPool {
        ThreadPool::new(2)
    }

    #[test]
    fn registry_covers_every_variant() {
        // Each registry row parses to a distinct variant, and every
        // variant's canonical name parses back to itself.
        for spec in all_specs() {
            let back = ObjectiveSpec::parse(&spec.name())
                .unwrap_or_else(|e| panic!("{} must parse: {e}", spec.name()));
            assert_eq!(back, spec, "parse(name()) must round-trip");
        }
        assert_eq!(REGISTRY.len(), all_specs().len(), "one registry row per variant");
    }

    fn all_specs() -> Vec<ObjectiveSpec> {
        vec![
            ObjectiveSpec::Logistic,
            ObjectiveSpec::SquaredError,
            ObjectiveSpec::Softmax { n_classes: 3 },
            ObjectiveSpec::Quantile { alpha: 0.9 },
            ObjectiveSpec::Tweedie { power: 1.5 },
            ObjectiveSpec::Huber { delta: 2.0 },
            ObjectiveSpec::LambdaRank { k: 10 },
        ]
    }

    #[test]
    fn parse_rejections_name_the_registry() {
        let err = ObjectiveSpec::parse("hinge").unwrap_err();
        for info in REGISTRY {
            assert!(err.contains(info.syntax), "error must list {}: {err}", info.syntax);
        }
        assert!(ObjectiveSpec::parse("softmax:x").is_err());
        assert!(ObjectiveSpec::parse("softmax").is_err(), "softmax needs a class count");
        assert!(ObjectiveSpec::parse("quantile:1.5").is_err(), "alpha out of range");
        assert!(ObjectiveSpec::parse("tweedie:2.5").is_err(), "power out of range");
        assert!(ObjectiveSpec::parse("huber:-1").is_err(), "delta must be positive");
        assert!(ObjectiveSpec::parse("lambdarank:0").is_err(), "k must be >= 1");
        assert!(ObjectiveSpec::parse("logistic:1").is_err(), "logistic takes no parameter");
    }

    #[test]
    fn bare_parameterized_names_use_defaults() {
        assert_eq!(
            ObjectiveSpec::parse("quantile").unwrap(),
            ObjectiveSpec::Quantile { alpha: 0.5 }
        );
        assert_eq!(ObjectiveSpec::parse("tweedie").unwrap(), ObjectiveSpec::Tweedie { power: 1.5 });
        assert_eq!(ObjectiveSpec::parse("huber").unwrap(), ObjectiveSpec::Huber { delta: 1.0 });
        assert_eq!(
            ObjectiveSpec::parse("lambdarank").unwrap(),
            ObjectiveSpec::LambdaRank { k: 10 }
        );
    }

    #[test]
    fn logistic_gradients() {
        // At pred 0 (p = 0.5): g = 0.5 - y, h = 0.25.
        let rw = LogisticObjective;
        let [g, h] = rw.grad(&[0.0], 1.0, 0);
        assert!((g + 0.5).abs() < 1e-6);
        assert!((h - 0.25).abs() < 1e-6);
        let [g, _] = rw.grad(&[0.0], 0.0, 0);
        assert!((g - 0.5).abs() < 1e-6);
    }

    #[test]
    fn squared_gradients() {
        let [g, h] = SquaredErrorObjective.grad(&[3.0], 1.0, 0);
        assert_eq!(g, 2.0);
        assert_eq!(h, 1.0);
    }

    #[test]
    fn base_score_logistic_is_log_odds() {
        let labels = [1.0, 1.0, 1.0, 0.0];
        let b = LossKind::Logistic.base_scores(&labels)[0];
        assert!((sigmoid(b) - 0.75).abs() < 1e-5);
    }

    #[test]
    fn base_score_squared_is_mean() {
        assert!((LossKind::SquaredError.base_scores(&[1.0, 2.0, 6.0])[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn parallel_gradients_match_serial() {
        let pool = ThreadPool::new(4);
        let n = 10_000;
        let preds: Vec<f32> = (0..n).map(|i| (i as f32 / 777.0).sin()).collect();
        let labels: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();
        let mut par = vec![[0.0f32; 2]; n];
        LossKind::Logistic.compute_gradients(&pool, &preds, &labels, &mut par);
        let rw = LogisticObjective;
        for i in 0..n {
            let mut expect = rw.grad(&preds[i..=i], labels[i], 0);
            expect[1] = expect[1].max(HESSIAN_FLOOR);
            assert_eq!(par[i], expect, "row {i}");
        }
    }

    #[test]
    fn softmax_gradients_sum_to_zero_across_classes() {
        let pool = pool();
        let spec = LossKind::Softmax { n_classes: 3 };
        let obj = spec.build();
        let n = 50;
        let preds: Vec<f32> = (0..n * 3).map(|i| ((i * 31) % 17) as f32 / 5.0).collect();
        let labels: Vec<f32> = (0..n).map(|i| (i % 3) as f32).collect();
        let mut per_class = vec![vec![[0.0f32; 2]; n]; 3];
        for (c, out) in per_class.iter_mut().enumerate() {
            compute_gradients_group(
                obj.as_ref(),
                &pool,
                &preds,
                &labels,
                None,
                c,
                &RowScaling::default(),
                out,
            );
        }
        for r in 0..n {
            let g_sum: f32 = per_class.iter().map(|grads| grads[r][0]).sum();
            assert!(g_sum.abs() < 1e-5, "row {r}: class gradients sum to {g_sum}");
            for grads in &per_class {
                assert!(grads[r][1] > 0.0, "hessian must be positive");
            }
        }
    }

    #[test]
    fn softmax_base_scores_are_log_priors() {
        let spec = LossKind::Softmax { n_classes: 3 };
        let labels = [0.0, 0.0, 1.0, 2.0];
        let b = spec.base_scores(&labels);
        assert_eq!(b.len(), 3);
        assert!((b[0] - 0.5f32.ln()).abs() < 1e-6);
        assert!((b[1] - 0.25f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn transform_scores_softmax_rows_normalize() {
        let spec = LossKind::Softmax { n_classes: 3 };
        let raw = [1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        let p = spec.transform_scores(&raw);
        for row in p.chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row[2] > row[1] && row[1] > row[0], "monotone in raw score");
        }
    }

    #[test]
    fn row_scaling_weights_scale_gradients() {
        let pool = ThreadPool::new(1);
        let preds = [0.0f32, 0.0];
        let labels = [1.0f32, 1.0];
        let weights = [1.0f32, 3.0];
        let mut out = [[0.0f32; 2]; 2];
        let scaling = RowScaling { weights: Some(&weights), subsample: 1.0, seed: 0 };
        let obj = LossKind::Logistic.build();
        compute_gradients_group(obj.as_ref(), &pool, &preds, &labels, None, 0, &scaling, &mut out);
        assert!((out[1][0] / out[0][0] - 3.0).abs() < 1e-6);
        assert!((out[1][1] / out[0][1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn hessian_never_zero() {
        // Extreme predictions must not produce a zero hessian (division by
        // H + λ could otherwise blow up with λ = 0).
        let pool = ThreadPool::new(1);
        let mut out = [[0.0f32; 2]; 1];
        LossKind::Logistic.compute_gradients(&pool, &[100.0], &[1.0], &mut out);
        assert!(out[0][1] > 0.0);
    }

    /// A pathological objective whose raw Hessian is exactly zero — the
    /// driver's centralized floor must protect it (the satellite-2
    /// guarantee for user impls that never heard of the clamp).
    struct ZeroHessian;
    impl RowWiseGrad for ZeroHessian {
        fn grad(&self, scores: &[f32], label: f32, _group: usize) -> GradPair {
            [scores[0] - label, 0.0]
        }
    }
    impl Objective for ZeroHessian {
        fn spec(&self) -> ObjectiveSpec {
            ObjectiveSpec::SquaredError
        }
        fn validate_data(&self, _: &[f32], _: Option<&[u32]>) -> Result<(), String> {
            Ok(())
        }
        fn base_scores(&self, _: &[f32]) -> Vec<f32> {
            vec![0.0]
        }
        fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
            raw.to_vec()
        }
        fn default_metric(&self) -> EvalMetric {
            EvalMetric::Rmse
        }
        fn gradients(&self) -> GradientFn<'_> {
            GradientFn::RowWise(self)
        }
    }

    #[test]
    fn driver_floors_every_hessian() {
        let pool = pool();
        let n = 3000; // spans multiple parallel chunks
        let preds: Vec<f32> = (0..n).map(|i| i as f32 / 100.0).collect();
        let labels = vec![0.0f32; n];
        let mut out = vec![[0.0f32; 2]; n];
        compute_gradients_group(
            &ZeroHessian,
            &pool,
            &preds,
            &labels,
            None,
            0,
            &RowScaling::default(),
            &mut out,
        );
        for (i, gp) in out.iter().enumerate() {
            assert!(gp[1] >= HESSIAN_FLOOR, "row {i}: hessian {} below floor", gp[1]);
        }
    }

    #[test]
    fn floor_is_applied_before_row_scaling() {
        // A weighted row's floored hessian scales with the weight — the
        // clamp happens on the raw pair, then the scale multiplies, exactly
        // like the pre-trait logistic/softmax arithmetic.
        let pool = ThreadPool::new(1);
        let weights = [2.5f32];
        let scaling = RowScaling { weights: Some(&weights), subsample: 1.0, seed: 0 };
        let mut out = [[0.0f32; 2]; 1];
        compute_gradients_group(&ZeroHessian, &pool, &[1.0], &[0.0], None, 0, &scaling, &mut out);
        assert_eq!(out[0][1], HESSIAN_FLOOR * 2.5);
        assert_eq!(out[0][0], 2.5);
    }
}
