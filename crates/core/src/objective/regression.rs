//! New regression workloads opened by the objective seam: quantile
//! (pinball), Tweedie (zero-inflated non-negative targets), and Huber
//! (outlier-robust) regression.

use super::{builtin::finite_labels, GradientFn, Objective, ObjectiveSpec, RowWiseGrad};
use crate::loss::GradPair;
use crate::trainer::EvalMetric;

/// Quantile regression under the pinball loss
/// `L(y, s) = (α - 1[y < s]) · (y - s)`: the model estimates the
/// `alpha`-quantile of `y | x`. The loss is piecewise linear, so the true
/// second derivative is zero almost everywhere; a unit Hessian turns the
/// Newton step into a damped gradient step (the standard GBDT treatment).
pub struct QuantileObjective {
    alpha: f32,
}

impl QuantileObjective {
    /// Creates a quantile objective at `alpha` in `(0, 1)`.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "quantile alpha must be in (0, 1)");
        Self { alpha }
    }
}

impl RowWiseGrad for QuantileObjective {
    #[inline]
    fn grad(&self, scores: &[f32], label: f32, _group: usize) -> GradPair {
        let g = if scores[0] >= label { 1.0 - self.alpha } else { -self.alpha };
        [g, 1.0]
    }
}

impl Objective for QuantileObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::Quantile { alpha: self.alpha }
    }

    fn validate_data(&self, labels: &[f32], _query_groups: Option<&[u32]>) -> Result<(), String> {
        finite_labels(labels)
    }

    fn base_scores(&self, labels: &[f32]) -> Vec<f32> {
        vec![empirical_quantile(labels, self.alpha)]
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        raw.to_vec()
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::Pinball { alpha: self.alpha }
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::RowWise(self)
    }
}

/// Tweedie regression with variance power `p` in `(1, 2)` — the compound
/// Poisson–gamma family for zero-inflated non-negative targets (e.g.
/// insurance claim amounts). Raw scores are log-means (`μ = exp(s)`), so
/// with the deviance loss
/// `L = 2(y^{2-p}/((1-p)(2-p)) - y·μ^{1-p}/(1-p) + μ^{2-p}/(2-p))`
/// the gradients in `s` (dropping the constant 2) are
/// `g = -y·e^{(1-p)s} + e^{(2-p)s}` and
/// `h = (p-1)·y·e^{(1-p)s} + (2-p)·e^{(2-p)s}` — both terms positive on
/// valid data, matching the XGBoost/LightGBM convention.
pub struct TweedieObjective {
    power: f32,
}

impl TweedieObjective {
    /// Creates a Tweedie objective with variance power in `(1, 2)`.
    pub fn new(power: f32) -> Self {
        assert!(power > 1.0 && power < 2.0, "tweedie power must be in (1, 2)");
        Self { power }
    }
}

impl RowWiseGrad for TweedieObjective {
    #[inline]
    fn grad(&self, scores: &[f32], label: f32, _group: usize) -> GradPair {
        let s = scores[0];
        let rho = self.power;
        let e1 = ((1.0 - rho) * s).exp();
        let e2 = ((2.0 - rho) * s).exp();
        let g = -label * e1 + e2;
        let h = (rho - 1.0) * label * e1 + (2.0 - rho) * e2;
        [g, h]
    }
}

impl Objective for TweedieObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::Tweedie { power: self.power }
    }

    fn validate_data(&self, labels: &[f32], _query_groups: Option<&[u32]>) -> Result<(), String> {
        for (i, &y) in labels.iter().enumerate() {
            if !y.is_finite() || y < 0.0 {
                return Err(format!(
                    "tweedie labels must be finite and non-negative; row {i} has {y}"
                ));
            }
        }
        Ok(())
    }

    fn base_scores(&self, labels: &[f32]) -> Vec<f32> {
        if labels.is_empty() {
            return vec![0.0];
        }
        let mean = labels.iter().sum::<f32>() / labels.len() as f32;
        vec![mean.max(1e-6).ln()]
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        raw.iter().map(|&s| s.exp()).collect()
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::TweedieDeviance { power: self.power }
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::RowWise(self)
    }
}

/// Huber (robust) regression: quadratic for residuals within `±delta`,
/// linear outside, so gross outliers contribute a bounded gradient
/// `±delta` instead of dragging the fit. Like quantile, the tail second
/// derivative is zero, so a unit Hessian gives damped gradient steps.
pub struct HuberObjective {
    delta: f32,
}

impl HuberObjective {
    /// Creates a Huber objective with transition width `delta` > 0.
    pub fn new(delta: f32) -> Self {
        assert!(delta > 0.0 && delta.is_finite(), "huber delta must be positive");
        Self { delta }
    }
}

impl RowWiseGrad for HuberObjective {
    #[inline]
    fn grad(&self, scores: &[f32], label: f32, _group: usize) -> GradPair {
        let r = scores[0] - label;
        [r.clamp(-self.delta, self.delta), 1.0]
    }
}

impl Objective for HuberObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::Huber { delta: self.delta }
    }

    fn validate_data(&self, labels: &[f32], _query_groups: Option<&[u32]>) -> Result<(), String> {
        finite_labels(labels)
    }

    fn base_scores(&self, labels: &[f32]) -> Vec<f32> {
        // The median minimizes the Huber loss in the linear regime and is
        // near-optimal in the quadratic one — and it is outlier-robust,
        // which is the point of this objective.
        vec![empirical_quantile(labels, 0.5)]
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        raw.to_vec()
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::HuberLoss { delta: self.delta }
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::RowWise(self)
    }
}

/// Empirical `alpha`-quantile by sorting (nearest-rank); 0 on empty input.
fn empirical_quantile(labels: &[f32], alpha: f32) -> f32 {
    if labels.is_empty() {
        return 0.0;
    }
    let mut sorted = labels.to_vec();
    sorted.sort_by(f32::total_cmp);
    let rank = ((alpha as f64) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_base_is_empirical_quantile() {
        let labels: Vec<f32> = (0..101).map(|i| i as f32).collect();
        let q = QuantileObjective::new(0.9);
        assert_eq!(q.base_scores(&labels)[0], 90.0);
        let med = HuberObjective::new(1.0);
        assert_eq!(med.base_scores(&labels)[0], 50.0);
    }

    #[test]
    fn quantile_gradient_signs() {
        let q = QuantileObjective::new(0.9);
        // Under-prediction should be pulled up hard (g = -0.9), over-
        // prediction pushed down gently (g = 0.1).
        assert_eq!(q.grad(&[0.0], 1.0, 0)[0], -0.9);
        assert!((q.grad(&[2.0], 1.0, 0)[0] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn tweedie_gradient_zero_at_optimum() {
        // At s = ln(y), μ = y and the deviance gradient vanishes.
        let t = TweedieObjective::new(1.5);
        let y = 3.7f32;
        let [g, h] = t.grad(&[y.ln()], y, 0);
        assert!(g.abs() < 1e-5, "g = {g}");
        assert!(h > 0.0);
    }

    #[test]
    fn huber_gradient_is_bounded() {
        let hu = HuberObjective::new(2.0);
        assert_eq!(hu.grad(&[100.0], 0.0, 0)[0], 2.0);
        assert_eq!(hu.grad(&[-100.0], 0.0, 0)[0], -2.0);
        assert_eq!(hu.grad(&[1.0], 0.0, 0)[0], 1.0);
    }

    #[test]
    fn tweedie_rejects_negative_labels() {
        let t = TweedieObjective::new(1.5);
        assert!(t.validate_data(&[1.0, -0.5], None).is_err());
        assert!(t.validate_data(&[0.0, 2.5], None).is_ok());
    }
}
