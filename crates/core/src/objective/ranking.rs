//! LambdaMART ranking: pairwise lambda gradients weighted by |ΔNDCG@k|,
//! computed per query group — the listwise side of the gradient dispatch.

use super::{GradScope, GradientFn, ListwiseGrad, Objective, ObjectiveSpec};
use crate::loss::GradPair;
use crate::trainer::EvalMetric;

/// LambdaMART: for every in-query document pair with different relevance,
/// add the RankNet gradient `ρ = 1/(1 + exp(s_hi - s_lo))` scaled by the
/// NDCG@k swap delta `|Δ| = |gain_hi - gain_lo| · |disc(p_hi) - disc(p_lo)| / IDCG`.
/// Gains are `2^rel - 1`, discounts `1/log2(pos + 2)` truncated at `k`.
/// Queries with `IDCG = 0` (no relevant documents) contribute nothing.
///
/// Pair enumeration is O(n²) per query — fine at the few-dozen documents
/// per query of real ranking data and of the synthetic generator.
pub struct LambdaRankObjective {
    k: usize,
}

impl LambdaRankObjective {
    /// Creates a LambdaRank objective truncated at NDCG depth `k` (>= 1).
    pub fn new(k: u32) -> Self {
        assert!(k >= 1, "lambdarank truncation k must be >= 1");
        Self { k: k as usize }
    }

    /// Truncated DCG discount of rank position `pos` (0-based).
    #[inline]
    fn discount(&self, pos: usize) -> f64 {
        if pos < self.k {
            1.0 / ((pos + 2) as f64).log2()
        } else {
            0.0
        }
    }
}

impl ListwiseGrad for LambdaRankObjective {
    fn grads(&self, scope: &GradScope<'_>, out: &mut [GradPair]) {
        out.fill([0.0, 0.0]);
        let mut start = 0usize;
        for &sz in scope.query_groups {
            let sz = sz as usize;
            let scores = &scope.preds[start..start + sz];
            let labels = &scope.labels[start..start + sz];

            // Rank documents by score descending; ties break by index
            // ascending for determinism.
            let mut order: Vec<usize> = (0..sz).collect();
            order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
            // rank[doc] = position of doc in the current ranking.
            let mut rank = vec![0usize; sz];
            for (pos, &doc) in order.iter().enumerate() {
                rank[doc] = pos;
            }

            // Ideal DCG: gains sorted descending against the discounts.
            let gains: Vec<f64> = labels.iter().map(|&y| 2f64.powf(y as f64) - 1.0).collect();
            let mut ideal = gains.clone();
            ideal.sort_by(|a, b| b.total_cmp(a));
            let idcg: f64 = ideal.iter().enumerate().map(|(pos, g)| g * self.discount(pos)).sum();
            if idcg <= 0.0 {
                start += sz;
                continue;
            }
            for i in 0..sz {
                for j in 0..sz {
                    if labels[i] <= labels[j] {
                        continue;
                    }
                    // i is the more relevant document of the pair.
                    let delta = (gains[i] - gains[j]).abs()
                        * (self.discount(rank[i]) - self.discount(rank[j])).abs()
                        / idcg;
                    if delta == 0.0 {
                        continue;
                    }
                    let rho = 1.0 / (1.0 + ((scores[i] - scores[j]) as f64).exp());
                    let lambda = (rho * delta) as f32;
                    let weight = (rho * (1.0 - rho) * delta) as f32;
                    out[start + i][0] -= lambda;
                    out[start + j][0] += lambda;
                    out[start + i][1] += weight;
                    out[start + j][1] += weight;
                }
            }
            start += sz;
        }
    }
}

impl Objective for LambdaRankObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::LambdaRank { k: self.k as u32 }
    }

    fn validate_data(&self, labels: &[f32], query_groups: Option<&[u32]>) -> Result<(), String> {
        let Some(qg) = query_groups else {
            return Err(
                "lambdarank needs query-group sizes (Dataset::with_query_groups or --groups)"
                    .into(),
            );
        };
        let total: usize = qg.iter().map(|&s| s as usize).sum();
        if total != labels.len() {
            return Err(format!(
                "query-group sizes sum to {total} but the dataset has {} rows",
                labels.len()
            ));
        }
        for (i, &y) in labels.iter().enumerate() {
            if !y.is_finite() || y < 0.0 {
                return Err(format!(
                    "relevance labels must be finite and non-negative; row {i} has {y}"
                ));
            }
        }
        Ok(())
    }

    fn base_scores(&self, _labels: &[f32]) -> Vec<f32> {
        // Ranking scores are translation-invariant; start at zero.
        vec![0.0]
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        raw.to_vec()
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::NdcgAt { k: self.k as u32 }
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::Listwise(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grads_of(scores: &[f32], labels: &[f32], groups: &[u32], k: u32) -> Vec<GradPair> {
        let obj = LambdaRankObjective::new(k);
        let mut out = vec![[0.0f32; 2]; labels.len()];
        obj.grads(&GradScope { preds: scores, labels, query_groups: groups }, &mut out);
        out
    }

    #[test]
    fn per_query_gradients_sum_to_zero() {
        let scores = [0.3f32, -0.1, 0.8, 0.2, 0.9, -0.4];
        let labels = [2.0f32, 0.0, 1.0, 3.0, 0.0, 1.0];
        let out = grads_of(&scores, &labels, &[3, 3], 10);
        for (lo, hi) in [(0, 3), (3, 6)] {
            let g: f32 = out[lo..hi].iter().map(|p| p[0]).sum();
            assert!(g.abs() < 1e-6, "query [{lo},{hi}) gradient sum {g}");
            assert!(out[lo..hi].iter().all(|p| p[1] >= 0.0), "hessians non-negative");
        }
    }

    #[test]
    fn misranked_pair_gets_pulled_toward_order() {
        // Relevant doc scored below an irrelevant one: the relevant doc's
        // gradient must be negative (raw scores move opposite to g).
        let out = grads_of(&[-1.0, 1.0], &[1.0, 0.0], &[2], 10);
        assert!(out[0][0] < 0.0, "relevant doc pulled up");
        assert!(out[1][0] > 0.0, "irrelevant doc pushed down");
        assert!(out[0][1] > 0.0 && out[1][1] > 0.0);
    }

    #[test]
    fn all_zero_relevance_query_is_skipped() {
        let out = grads_of(&[0.5, -0.5], &[0.0, 0.0], &[2], 10);
        assert_eq!(out, vec![[0.0, 0.0]; 2]);
    }

    #[test]
    fn truncation_zeroes_pairs_below_k() {
        // Doc 0 is the most relevant and correctly ranked first by a huge
        // margin, so its pairs carry ρ ≈ σ(-8) ≈ 0. The remaining
        // (doc2, doc1) pair is misordered at positions 1–2: entirely below
        // the k=1 cutoff its |ΔNDCG| is exactly 0, so every k=1 gradient is
        // vanishingly small, while k=3 sees the swap and pulls hard.
        let scores = [10.0f32, 2.0, 1.0];
        let labels = [3.0f32, 1.0, 2.0];
        let out_k1 = grads_of(&scores, &labels, &[3], 1);
        let out_k3 = grads_of(&scores, &labels, &[3], 3);
        assert!(out_k1[1][0].abs() < 1e-3, "below-cutoff pair must not couple: {out_k1:?}");
        assert!(out_k1[2][0].abs() < 1e-3, "below-cutoff pair must not couple: {out_k1:?}");
        assert!(out_k3[2][0].abs() > 1e-2, "k=3 must see the misordered pair: {out_k3:?}");
        assert!(out_k3[2][0] < 0.0, "the more relevant doc is pulled up");
    }
}
