//! The original three objectives — logistic, squared error, softmax — as
//! [`Objective`] impls. Their arithmetic is copied verbatim from the
//! pre-trait `LossKind` methods so fixed-seed training stays bitwise
//! identical: the driver's uniform `max(h, HESSIAN_FLOOR)` clamp replaces
//! the identical in-grad clamps the old code carried.

use super::{GradientFn, Objective, ObjectiveSpec, RowWiseGrad};
use crate::loss::{sigmoid, GradPair};
use crate::trainer::EvalMetric;

/// Binary logistic regression: `g = p - y`, `h = p(1 - p)`.
pub struct LogisticObjective;

impl RowWiseGrad for LogisticObjective {
    #[inline]
    fn grad(&self, scores: &[f32], label: f32, _group: usize) -> GradPair {
        let p = sigmoid(scores[0]);
        [p - label, p * (1.0 - p)]
    }
}

impl Objective for LogisticObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::Logistic
    }

    fn validate_data(&self, labels: &[f32], _query_groups: Option<&[u32]>) -> Result<(), String> {
        for (i, &y) in labels.iter().enumerate() {
            if !(0.0..=1.0).contains(&y) {
                return Err(format!("logistic labels must lie in [0, 1]; row {i} has {y}"));
            }
        }
        Ok(())
    }

    fn base_scores(&self, labels: &[f32]) -> Vec<f32> {
        if labels.is_empty() {
            return vec![0.0];
        }
        let mean = labels.iter().sum::<f32>() / labels.len() as f32;
        let p = mean.clamp(1e-6, 1.0 - 1e-6);
        vec![(p / (1.0 - p)).ln()]
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        raw.iter().map(|&s| sigmoid(s)).collect()
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::Auc
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::RowWise(self)
    }
}

/// Squared-error regression: `g = pred - y`, `h = 1`.
pub struct SquaredErrorObjective;

impl RowWiseGrad for SquaredErrorObjective {
    #[inline]
    fn grad(&self, scores: &[f32], label: f32, _group: usize) -> GradPair {
        [scores[0] - label, 1.0]
    }
}

impl Objective for SquaredErrorObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::SquaredError
    }

    fn validate_data(&self, labels: &[f32], _query_groups: Option<&[u32]>) -> Result<(), String> {
        finite_labels(labels)
    }

    fn base_scores(&self, labels: &[f32]) -> Vec<f32> {
        if labels.is_empty() {
            return vec![0.0];
        }
        vec![labels.iter().sum::<f32>() / labels.len() as f32]
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        raw.to_vec()
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::Rmse
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::RowWise(self)
    }
}

/// Multiclass softmax: one tree per class per round; the per-class gradient
/// reads the whole row of class scores, which is why a scalar gradient
/// entry point cannot exist for this objective.
pub struct SoftmaxObjective {
    n_classes: usize,
}

impl SoftmaxObjective {
    /// Creates a softmax objective over `n_classes` classes (>= 2).
    pub fn new(n_classes: u32) -> Self {
        assert!(n_classes >= 2, "softmax needs at least 2 classes");
        Self { n_classes: n_classes as usize }
    }
}

impl RowWiseGrad for SoftmaxObjective {
    #[inline]
    fn grad(&self, scores: &[f32], label: f32, group: usize) -> GradPair {
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let sum: f32 = scores.iter().map(|&s| (s - max).exp()).sum();
        let p = (scores[group] - max).exp() / sum;
        let y = if label as usize == group { 1.0 } else { 0.0 };
        // The conventional 2x hessian scaling of softmax boosting (matches
        // XGBoost/LightGBM).
        [p - y, 2.0 * p * (1.0 - p)]
    }
}

impl Objective for SoftmaxObjective {
    fn spec(&self) -> ObjectiveSpec {
        ObjectiveSpec::Softmax { n_classes: self.n_classes as u32 }
    }

    fn n_groups(&self) -> usize {
        self.n_classes
    }

    fn validate_data(&self, labels: &[f32], _query_groups: Option<&[u32]>) -> Result<(), String> {
        let c = self.n_classes;
        for (i, &y) in labels.iter().enumerate() {
            let idx = y as usize;
            if !y.is_finite() || y.fract() != 0.0 || idx >= c {
                return Err(format!("softmax labels must be class ids 0..{c}; row {i} has {y}"));
            }
        }
        Ok(())
    }

    fn base_scores(&self, labels: &[f32]) -> Vec<f32> {
        let c = self.n_classes;
        let mut counts = vec![0usize; c];
        for &y in labels {
            let idx = y as usize;
            assert!(idx < c, "label {y} out of range for {c} classes");
            counts[idx] += 1;
        }
        let n = labels.len().max(1) as f32;
        counts.into_iter().map(|cnt| ((cnt as f32 / n).max(1e-6)).ln()).collect()
    }

    fn transform_scores(&self, raw: &[f32]) -> Vec<f32> {
        let c = self.n_classes;
        assert_eq!(raw.len() % c, 0, "raw score buffer not divisible by class count");
        let mut out = Vec::with_capacity(raw.len());
        for row in raw.chunks_exact(c) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = row.iter().map(|&s| (s - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            out.extend(exps.iter().map(|&e| e / sum));
        }
        out
    }

    fn default_metric(&self) -> EvalMetric {
        EvalMetric::MulticlassLogLoss
    }

    fn gradients(&self) -> GradientFn<'_> {
        GradientFn::RowWise(self)
    }
}

/// Shared finite-label check for regression objectives.
pub(super) fn finite_labels(labels: &[f32]) -> Result<(), String> {
    for (i, &y) in labels.iter().enumerate() {
        if !y.is_finite() {
            return Err(format!("labels must be finite; row {i} has {y}"));
        }
    }
    Ok(())
}
