//! Block-wise BuildHist drivers: data-parallel and model-parallel.
//!
//! Both drivers take a batch of *hist jobs* (one per tree node that needs a
//! histogram) and fill each node's GHSum buffer. The block decomposition
//! itself lives in [`crate::plan`]: each driver rebuilds the shared
//! [`BlockPlan`] for its accumulation policy and executes the task list —
//! the DP/MP distinction is the [`Accumulation`] policy, not a separate
//! enumeration:
//!
//! * **DP** ([`build_hists_dp`], [`Accumulation::Replicated`]): tasks are
//!   ⟨node-block, feature-block, row-chunk⟩ triples. Every replica covers
//!   the whole batch's histograms; tasks accumulate into their replica and
//!   a reduction folds replicas into the job buffers afterwards. The
//!   reduction cost grows with the number of nodes in the batch — exactly
//!   the scaling weakness of XGB-Hist that Fig. 11 shows for large trees.
//! * **MP** ([`build_hists_mp`], [`Accumulation::Exclusive`]): tasks are
//!   ⟨node-block, feature-block, bin-block⟩ triples writing disjoint
//!   regions of the job buffers — no replicas, no reduction, but a task's
//!   read traffic is the whole row set of its nodes (redundant reads when
//!   feature blocks are small).
//!
//! In deterministic mode DP emulates an OpenMP *static* schedule: task `t`
//! of `T` processes every `T`-th block into replica `t`, so per-cell
//! accumulation order is independent of thread timing.
//!
//! Both drivers draw their scratch — replica buffers and task vectors —
//! from a caller-held [`DriverScratch`], so nothing is reallocated across
//! frontiers or trees. Replicas come from a [`ScratchPool`] with
//! dirty-range tracking: a released replica remembers which `(job,
//! feature-block)` lanes its tasks wrote, and the next acquire re-zeroes
//! only those. In deterministic mode the static schedule pins each task to
//! its replica, so the tracked set is exact; in dynamic mode any worker may
//! have run any task and every replica conservatively takes the union.

use crate::hist::{ReplicaBuf, ScratchPool};
use crate::kernels::{
    col_scan_store, row_scan, row_scan_root, row_scan_root_store, row_scan_scalar, row_scan_store,
    GradSource, BYTES_PER_CELL, FLOPS_PER_CELL,
};
use crate::loss::GradPair;
use crate::params::TrainParams;
use crate::partition::RowPartition;
use crate::plan::{
    dp_write_working_set, mp_write_working_set, Accumulation, BatchShape, BlockPlan, BlockTask,
    ResolvedExtents, ScanLayout,
};
use crate::tree::NodeId;
use harp_binning::QuantStore;
use harp_parallel::{ThreadPool, TracePhase, TraceSink};
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// A histogram to fill for one node.
pub struct HistJob {
    /// The node whose rows are scanned.
    pub node: NodeId,
    /// The node's GHSum buffer ([`crate::hist::hist_width`] lanes, zeroed).
    pub buf: Vec<f64>,
}

/// Shared context threaded through the drivers.
pub struct DriverCtx<'a> {
    /// Quantized input, chunk-mediated (in-core or out-of-core).
    pub qm: &'a dyn QuantStore,
    /// Training parameters (block sizes, determinism, MemBuf flag).
    pub params: &'a TrainParams,
    /// Worker pool.
    pub pool: &'a ThreadPool,
    /// Row membership and MemBuf.
    pub partition: &'a RowPartition,
    /// Global gradient array (fallback when MemBuf is off).
    pub grads: &'a [GradPair],
}

impl DriverCtx<'_> {
    fn grad_source<'a>(&'a self, node: NodeId) -> GradSource<'a> {
        GradSource::select(self.partition.grads(node), self.grads)
    }

    fn trace(&self) -> Option<&TraceSink> {
        self.pool.trace().map(|s| s.as_ref())
    }

    fn report_cells(&self, cells: u64) {
        self.pool.profile().add_bytes(
            cells * (BYTES_PER_CELL - 16),
            cells * 16,
            cells * FLOPS_PER_CELL,
        );
    }
}

/// Caller-held driver scratch: the replica arena, the reusable
/// [`BlockPlan`], and range vectors. One per training engine; it survives
/// across frontiers and trees so steady-state BuildHist performs no heap
/// allocation.
#[derive(Default)]
pub struct DriverScratch {
    replicas: ScratchPool,
    plan: BlockPlan,
    job_lens: Vec<usize>,
    range_tmp: Vec<Range<usize>>,
    replica_stash: Vec<ReplicaBuf>,
}

impl DriverScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches the run-ledger byte gauge to the replica arena.
    pub fn set_replica_gauge(&mut self, gauge: std::sync::Arc<harp_metrics::MemGauge>) {
        self.replicas.set_gauge(gauge);
    }

    /// Takes and resets the plan's per-round batch/task tally plus the last
    /// resolved extents (the per-round ledger hook reads this).
    pub fn take_plan_stats(&mut self) -> (u64, u64, ResolvedExtents) {
        self.plan.take_round_stats()
    }

    /// Rebuilds the shared plan for one batch of `jobs` and returns the
    /// resolved extents. Split out so both drivers (and nothing else) go
    /// through the single enumerator.
    fn plan_batch(
        &mut self,
        ctx: &DriverCtx<'_>,
        jobs: &[HistJob],
        acc: Accumulation,
    ) -> ResolvedExtents {
        self.job_lens.clear();
        self.job_lens.extend(jobs.iter().map(|j| ctx.partition.node_len(j.node)));
        let shape = BatchShape {
            n_features: ctx.qm.n_features(),
            layout: ScanLayout::of(ctx.qm),
            max_bins: ctx.qm.mapper().max_bins_used() as usize,
            total_bins: ctx.qm.mapper().total_bins() as usize,
            n_threads: ctx.pool.num_threads(),
        };
        self.plan.rebuild(&ctx.params.blocks, &shape, &self.job_lens, acc);
        let ext = self.plan.extents();
        let (replicated, exclusive) = match acc {
            Accumulation::Replicated => (self.plan.tasks().len() as u64, 0),
            Accumulation::Exclusive => (0, self.plan.tasks().len() as u64),
        };
        ctx.pool.profile().add_plan_events(replicated, exclusive, ext.auto as u64);
        ext
    }
}

/// Sorts and coalesces ranges in place (empty ranges dropped).
fn merge_ranges(ranges: &mut Vec<Range<usize>>) {
    ranges.sort_unstable_by_key(|r| (r.start, r.end));
    let mut w = 0usize;
    for i in 0..ranges.len() {
        let r = ranges[i].clone();
        if r.start >= r.end {
            continue;
        }
        if w > 0 && r.start <= ranges[w - 1].end {
            ranges[w - 1].end = ranges[w - 1].end.max(r.end);
        } else {
            ranges[w] = r;
            w += 1;
        }
    }
    ranges.truncate(w);
}

/// Fills the jobs' histograms with data parallelism: executes a
/// [`Accumulation::Replicated`] plan.
pub fn build_hists_dp(ctx: &DriverCtx<'_>, scratch: &mut DriverScratch, jobs: &mut [HistJob]) {
    if jobs.is_empty() {
        return;
    }
    let ext = scratch.plan_batch(ctx, jobs, Accumulation::Replicated);
    let DriverScratch { replicas: arena, plan, range_tmp, replica_stash, .. } = scratch;
    let width = jobs[0].buf.len();
    let t = ctx.pool.num_threads();
    let row_blk = ext.row_blk;

    let tasks = plan.tasks();
    if tasks.is_empty() {
        ctx.report_cells(0);
        return;
    }

    // Replicas: one per schedule slot, covering the whole batch, drawn from
    // the arena (previously dirtied lanes re-zeroed, rest untouched).
    let n_replicas = t.min(tasks.len());
    let replica_len = jobs.len() * width;
    let mut replicas = std::mem::take(replica_stash);
    let (mut allocs, mut reuses) = (0u64, 0u64);
    for _ in 0..n_replicas {
        let (buf, allocated) = arena.acquire(replica_len);
        if allocated {
            allocs += 1;
        } else {
            reuses += 1;
        }
        replicas.push(buf);
    }
    ctx.pool.profile().add_scratch_events(allocs, reuses);

    struct Ptr(*mut f64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let replica_ptrs: Vec<Ptr> =
        replicas.iter_mut().map(|r| Ptr(r.as_mut_slice().as_mut_ptr())).collect();
    let cells = AtomicU64::new(0);
    let jobs_ro: &[HistJob] = jobs;
    let tasks_ro: &[BlockTask] = tasks;
    let use_scalar = ctx.params.use_scalar_kernels;
    let root_identity = ctx.partition.is_identity_order();

    let trace = ctx.trace();
    let run_task = |task: &BlockTask, replica: usize, lane: usize| {
        let job_idx = task.jobs.start;
        let job = &jobs_ro[job_idx];
        let _span = trace.map(|s| {
            s.span(lane, TracePhase::BuildHist, job.node, (task.rows.start / row_blk) as u32)
        });
        let membuf = ctx.partition.grads(job.node);
        let grads = if membuf.is_empty() {
            GradSource::Global(ctx.grads)
        } else {
            GradSource::MemBuf(&membuf[task.rows.clone()])
        };
        // SAFETY: each replica is written by exactly one schedule slot at a
        // time (slot == task index group in static mode, == worker index in
        // dynamic mode).
        let rep = unsafe { std::slice::from_raw_parts_mut(replica_ptrs[replica].0, replica_len) };
        let dst = &mut rep[job_idx * width..(job_idx + 1) * width];
        let c = if !use_scalar && job.node == 0 && root_identity {
            // Root fast path: the root span starts at row 0 in identity
            // order, so the chunk's positions ARE its row ids and the row-id
            // indirection drops out.
            row_scan_root_store(ctx.qm, task.rows.clone(), grads, task.features.clone(), dst)
        } else {
            let rows = &ctx.partition.rows(job.node)[task.rows.clone()];
            row_scan_store(ctx.qm, rows, grads, task.features.clone(), dst, use_scalar)
        };
        cells.fetch_add(c, Ordering::Relaxed);
    };

    // Chunk-major stripe execution for out-of-core stores. Deep nodes
    // scatter their rows over every chunk, so running each task to
    // completion sweeps the whole chunk sequence once *per task* — under a
    // resident budget that reloads the entire cache per task. Instead the
    // slot sweeps the chunk sequence ONCE, scanning every stripe task's
    // rows that fall inside the currently pinned chunk. Per histogram cell
    // this is still ascending-row accumulation: tasks sharing a (job,
    // feature) lane in one slot own ascending, disjoint position ranges of
    // the node's ascending row list, so interleaving them chunk by chunk
    // visits exactly the same rows in exactly the same order as running
    // them back to back — the result is bitwise identical to in-core.
    // When the resident budget holds only `capacity` chunks, concurrent
    // stripe cursors must stay within an eviction-free window of each other:
    // a cursor that runs `capacity` chunks ahead evicts exactly the chunks
    // the laggards are about to pin, degrading every sweep to a full
    // reload. Cursors publish their step count and a leader spin-waits
    // (bounded — task claiming is dynamic, so a slot may start late) until
    // the slowest cursor is back inside the window; the laggards then hit
    // the leader's decoded chunks instead of reloading their own.
    let capacity = ctx.qm.sweep_capacity();
    let window = if capacity == usize::MAX {
        usize::MAX
    } else {
        capacity.saturating_sub(n_replicas + 1).max(1)
    };
    let progress: Vec<std::sync::atomic::AtomicUsize> =
        (0..n_replicas).map(|_| std::sync::atomic::AtomicUsize::new(0)).collect();
    let progress = &progress;

    let run_stripe = |slot: usize, lane: usize| {
        struct Cursor<'a> {
            task: &'a BlockTask,
            job_idx: usize,
            /// Node-global row ids of the task (empty on the root fast path).
            rows: &'a [u32],
            /// Global row range on the root identity fast path.
            root: Option<Range<usize>>,
            /// Progress: index into `rows`, or rows consumed of `root`.
            pos: usize,
            /// Task-positional MemBuf slice (empty => global gradients).
            membuf: &'a [GradPair],
        }
        let store = ctx.qm;
        let mut cursors: Vec<Cursor> = Vec::new();
        let mut i = slot;
        while i < tasks_ro.len() {
            let task = &tasks_ro[i];
            let job_idx = task.jobs.start;
            let job = &jobs_ro[job_idx];
            let mb = ctx.partition.grads(job.node);
            let membuf = if mb.is_empty() { mb } else { &mb[task.rows.clone()] };
            let root = (!use_scalar && job.node == 0 && root_identity).then(|| task.rows.clone());
            let rows: &[u32] = if root.is_some() {
                &[]
            } else {
                &ctx.partition.rows(job.node)[task.rows.clone()]
            };
            cursors.push(Cursor { task, job_idx, rows, root, pos: 0, membuf });
            i += n_replicas;
        }
        let next_row = |c: &Cursor| -> Option<usize> {
            match &c.root {
                Some(r) => (r.start + c.pos < r.end).then_some(r.start + c.pos),
                None => c.rows.get(c.pos).map(|&r| r as usize),
            }
        };
        let mut local_cells = 0u64;
        let mut local_rows: Vec<u32> = Vec::new();
        let mut steps = 0usize;
        loop {
            let mut c_min = usize::MAX;
            for cur in &cursors {
                if let Some(r) = next_row(cur) {
                    c_min = c_min.min(store.chunk_of_row(r));
                }
            }
            if c_min == usize::MAX {
                progress[slot].store(usize::MAX, Ordering::Release);
                break;
            }
            if window != usize::MAX {
                progress[slot].store(steps, Ordering::Release);
                let behind =
                    || progress.iter().map(|p| p.load(Ordering::Acquire)).min().unwrap_or(steps);
                let mut spins = 0u32;
                while steps > behind() + window {
                    // Bounded: if the pool handed two slots to one worker,
                    // the missing cursor never advances — yield so its
                    // worker gets scheduled, give up after ~ms and run
                    // unthrottled rather than deadlock.
                    spins += 1;
                    if spins > 1 << 22 {
                        break;
                    }
                    if spins % 1024 == 0 {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            steps += 1;
            // Sweeps are ascending and near-dense over the chunk range, so
            // the sequential hint overlaps the next decode with this scan.
            if c_min + 1 < store.n_chunks() {
                store.prefetch(c_min + 1);
            }
            let span = store.chunk_rows(c_min);
            let chunk = store.pin(c_min);
            for cur in &mut cursors {
                let Some(r0) = next_row(cur) else { continue };
                if r0 >= span.end {
                    continue;
                }
                let job = &jobs_ro[cur.job_idx];
                let _span = trace
                    .map(|s| s.span(lane, TracePhase::BuildHist, job.node, c_min as u32));
                // SAFETY: as in `run_task` — this slot is the only writer
                // of its replica.
                let rep =
                    unsafe { std::slice::from_raw_parts_mut(replica_ptrs[slot].0, replica_len) };
                let dst = &mut rep[cur.job_idx * width..(cur.job_idx + 1) * width];
                let f_range = cur.task.features.clone();
                local_cells += match &cur.root {
                    Some(range) => {
                        let hi = span.end.min(range.end);
                        let grads = if cur.membuf.is_empty() {
                            GradSource::Global(&ctx.grads[span.start..])
                        } else {
                            GradSource::MemBuf(&cur.membuf[r0 - range.start..])
                        };
                        cur.pos += hi - r0;
                        row_scan_root(&chunk, r0 - span.start..hi - span.start, grads, f_range, dst)
                    }
                    None => {
                        let end = cur.pos
                            + cur.rows[cur.pos..].partition_point(|&r| (r as usize) < span.end);
                        local_rows.clear();
                        local_rows
                            .extend(cur.rows[cur.pos..end].iter().map(|&r| r - span.start as u32));
                        let grads = if cur.membuf.is_empty() {
                            GradSource::Global(&ctx.grads[span.start..])
                        } else {
                            GradSource::MemBuf(&cur.membuf[cur.pos..end])
                        };
                        let c = if use_scalar {
                            row_scan_scalar(&chunk, &local_rows, grads, f_range, dst)
                        } else {
                            row_scan(&chunk, &local_rows, grads, f_range, dst)
                        };
                        cur.pos = end;
                        c
                    }
                };
            }
        }
        cells.fetch_add(local_cells, Ordering::Relaxed);
    };

    let chunked = ctx.qm.as_single().is_none();
    // A chunked store always takes the static stripe schedule (so the
    // chunk-major sweep owns a fixed task set); bitwise reproducibility in
    // dynamic mode is no loss — dynamic replica assignment is already
    // timing-dependent in-core.
    let static_sched = ctx.params.deterministic || chunked;
    if chunked {
        ctx.pool.parallel_for(n_replicas, |slot, worker| run_stripe(slot, worker));
    } else if ctx.params.deterministic {
        // Static schedule: slot s runs tasks s, s+T, s+2T, ...
        ctx.pool.parallel_for(n_replicas, |slot, worker| {
            let mut i = slot;
            while i < tasks_ro.len() {
                run_task(&tasks_ro[i], slot, worker);
                i += n_replicas;
            }
        });
    } else {
        ctx.pool.parallel_for(tasks_ro.len(), |i, worker| {
            run_task(&tasks_ro[i], worker.min(n_replicas - 1), worker);
        });
    }

    // Reduction: fold replicas (in order) into the job buffers. Parallel
    // over (job, width-chunk) cells; replica order fixed => deterministic.
    // Only the real lanes are folded — the sink padding never leaves a
    // kernel non-zero.
    let real = ctx.qm.mapper().total_bins() as usize * 2;
    let chunk = (real / 4).max(1024).min(real.max(1));
    let chunks_per_job = real.div_ceil(chunk);
    let job_ptrs: Vec<Ptr> = jobs.iter_mut().map(|j| Ptr(j.buf.as_mut_ptr())).collect();
    let job_nodes: Vec<NodeId> = jobs.iter().map(|j| j.node).collect();
    let replicas_ro: &[ReplicaBuf] = &replicas;
    ctx.pool.parallel_for(jobs.len() * chunks_per_job, |i, worker| {
        let job_idx = i / chunks_per_job;
        let _span = trace.map(|s| s.span(worker, TracePhase::Reduce, job_nodes[job_idx], i as u32));
        let lo = (i % chunks_per_job) * chunk;
        let hi = (lo + chunk).min(real);
        // SAFETY: (job, lane-range) pairs are disjoint across tasks.
        let dst = unsafe { std::slice::from_raw_parts_mut(job_ptrs[job_idx].0.add(lo), hi - lo) };
        for rep in replicas_ro {
            let src = &rep.as_slice()[job_idx * width + lo..job_idx * width + hi];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    });

    // Record dirtied lanes per replica so the next acquire re-zeroes only
    // those. Sink lanes leave every kernel zeroed and real lanes of a task
    // cover features [f_lo, f_hi) of its job, so a task's dirty region is
    // one contiguous lane range.
    let offsets = ctx.qm.mapper().bin_offsets();
    let lane_range = |task: &BlockTask| {
        let lo = task.jobs.start * width + offsets[task.features.start] as usize * 2;
        let hi = task.jobs.start * width + offsets[task.features.end] as usize * 2;
        lo..hi
    };
    if static_sched {
        // Exact per-slot sets from the static schedule.
        for (slot, rep) in replicas.iter_mut().enumerate() {
            range_tmp.clear();
            let mut i = slot;
            while i < tasks.len() {
                range_tmp.push(lane_range(&tasks[i]));
                i += n_replicas;
            }
            merge_ranges(range_tmp);
            rep.set_dirty(range_tmp.drain(..));
        }
    } else {
        // Any worker may have run any task: conservative union everywhere.
        range_tmp.clear();
        range_tmp.extend(tasks.iter().map(lane_range));
        merge_ranges(range_tmp);
        for rep in &mut replicas {
            rep.set_dirty(range_tmp.iter().cloned());
        }
    }
    for rep in replicas.drain(..) {
        arena.release(rep);
    }
    *replica_stash = replicas;

    ctx.report_cells(cells.load(Ordering::Relaxed));
    // The write working set of one DP task: the feature block's share of the
    // replica, across the node block (§IV-E, 16 bytes per cell). Shared with
    // the cost model; the floating-point order no longer truncates to zero
    // for narrow feature blocks on wide histograms.
    let total_bins = ctx.qm.mapper().total_bins() as usize;
    let ws = dp_write_working_set(total_bins, ctx.qm.n_features(), ext.feature_blk, ext.node_blk);
    ctx.pool.profile().observe_region_bytes(ws as u64);
}

/// Fills the jobs' histograms with model parallelism (exclusive writes):
/// executes an [`Accumulation::Exclusive`] plan.
pub fn build_hists_mp(ctx: &DriverCtx<'_>, scratch: &mut DriverScratch, jobs: &mut [HistJob]) {
    if jobs.is_empty() {
        return;
    }
    let ext = scratch.plan_batch(ctx, jobs, Accumulation::Exclusive);
    let mapper = ctx.qm.mapper();
    let max_bins = mapper.max_bins_used() as usize;

    struct Ptr(*mut f64);
    unsafe impl Send for Ptr {}
    unsafe impl Sync for Ptr {}
    let width = jobs[0].buf.len();
    let job_ptrs: Vec<Ptr> = jobs.iter_mut().map(|j| Ptr(j.buf.as_mut_ptr())).collect();
    let jobs_ro: &[HistJob] = jobs;
    let cells = AtomicU64::new(0);
    let tasks_ro: &[BlockTask] = scratch.plan.tasks();
    let use_scalar = ctx.params.use_scalar_kernels;
    let trace = ctx.trace();

    ctx.pool.parallel_for(tasks_ro.len(), |i, worker| {
        let task = &tasks_ro[i];
        let _span = trace.map(|s| {
            s.span(worker, TracePhase::BuildHist, jobs_ro[task.jobs.start].node, i as u32)
        });
        let mut local_cells = 0u64;
        for job_idx in task.jobs.clone() {
            let job = &jobs_ro[job_idx];
            let rows = ctx.partition.rows(job.node);
            let grads = ctx.grad_source(job.node);
            // SAFETY: tasks write disjoint (node, feature, bin) regions.
            let buf = unsafe { std::slice::from_raw_parts_mut(job_ptrs[job_idx].0, width) };
            for f in task.features.clone() {
                let n_bins = mapper.n_bins(f) as usize;
                if n_bins == 0 {
                    continue;
                }
                let bin_range = match task.bins {
                    None => 0..n_bins,
                    Some((lo, hi)) => {
                        if lo >= n_bins {
                            continue;
                        }
                        lo..hi.min(n_bins)
                    }
                };
                let base = mapper.bin_offset(f) as usize * 2;
                let hist_f = &mut buf[base..base + n_bins * 2];
                local_cells +=
                    col_scan_store(ctx.qm, f, rows, grads, bin_range, hist_f, use_scalar);
            }
        }
        cells.fetch_add(local_cells, Ordering::Relaxed);
    });

    ctx.report_cells(cells.load(Ordering::Relaxed));
    // §IV-E: consecutive-write region = 16 × bin_blk × feature_blk ×
    // node_blk (shared with the cost model).
    let bin_blk = if ext.bin_blk == 0 { max_bins.max(1) } else { ext.bin_blk };
    let ws = mp_write_working_set(max_bins, bin_blk, ext.feature_blk, ext.node_blk);
    ctx.pool.profile().observe_region_bytes(ws as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::hist_width;
    use crate::kernels::row_scan_scalar;
    use crate::params::{BlockConfig, ParallelMode};
    use harp_binning::{BinningConfig, QuantizedMatrix};
    use harp_data::{DatasetKind, SynthConfig};
    use harp_parallel::Profile;
    use std::sync::Arc;

    fn setup(kind: DatasetKind, membuf: bool) -> (QuantizedMatrix, Vec<GradPair>, RowPartition) {
        let d = SynthConfig::new(kind, 42).with_scale(0.02).generate();
        let qm = QuantizedMatrix::from_matrix(&d.features, BinningConfig::with_max_bins(32));
        let n = qm.n_rows();
        let grads: Vec<GradPair> = (0..n).map(|i| [((i * 7) % 13) as f32 - 6.0, 1.0]).collect();
        let mut part = RowPartition::new(n, 64, membuf);
        part.reset(&grads);
        // Split the root twice to get a 3-node frontier {3, 4, 2}.
        part.apply_split(0, 1, 2, &|_, r| r % 2 == 0, None);
        part.apply_split(1, 3, 4, &|_, r| r % 3 == 0, None);
        (qm, grads, part)
    }

    fn padded(qm: &QuantizedMatrix) -> usize {
        hist_width(qm.mapper().total_bins(), qm.n_features())
    }

    fn reference_hist(
        qm: &QuantizedMatrix,
        part: &RowPartition,
        grads: &[GradPair],
        node: NodeId,
    ) -> Vec<f64> {
        let mut buf = vec![0.0; padded(qm)];
        row_scan_scalar(
            qm,
            part.rows(node),
            GradSource::Global(grads),
            0..qm.n_features(),
            &mut buf,
        );
        buf
    }

    fn run_driver(
        mode: ParallelMode,
        params: &TrainParams,
        qm: &QuantizedMatrix,
        part: &RowPartition,
        grads: &[GradPair],
        nodes: &[NodeId],
    ) -> Vec<Vec<f64>> {
        let pool = ThreadPool::new(params.n_threads);
        let mut scratch = DriverScratch::new();
        run_driver_with(mode, params, qm, part, grads, nodes, &pool, &mut scratch)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_driver_with(
        mode: ParallelMode,
        params: &TrainParams,
        qm: &QuantizedMatrix,
        part: &RowPartition,
        grads: &[GradPair],
        nodes: &[NodeId],
        pool: &ThreadPool,
        scratch: &mut DriverScratch,
    ) -> Vec<Vec<f64>> {
        let ctx = DriverCtx { qm, params, pool, partition: part, grads };
        let width = padded(qm);
        let mut jobs: Vec<HistJob> =
            nodes.iter().map(|&n| HistJob { node: n, buf: vec![0.0; width] }).collect();
        match mode {
            ParallelMode::DataParallel => build_hists_dp(&ctx, scratch, &mut jobs),
            ParallelMode::ModelParallel => build_hists_mp(&ctx, scratch, &mut jobs),
            _ => unreachable!("driver test"),
        }
        jobs.into_iter().map(|j| j.buf).collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9, "lane {i}: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn dp_matches_reference_dense() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let params = TrainParams { n_threads: 4, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let hists = run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &nodes);
        for (i, &n) in nodes.iter().enumerate() {
            assert_close(&hists[i], &reference_hist(&qm, &part, &grads, n));
        }
    }

    #[test]
    fn dp_root_fast_path_matches_reference() {
        let d = SynthConfig::new(DatasetKind::HiggsLike, 7).with_scale(0.02).generate();
        let qm = QuantizedMatrix::from_matrix(&d.features, BinningConfig::with_max_bins(32));
        let n = qm.n_rows();
        let grads: Vec<GradPair> = (0..n).map(|i| [(i % 11) as f32 - 5.0, 1.0]).collect();
        for membuf in [true, false] {
            let mut part = RowPartition::new(n, 8, membuf);
            part.reset(&grads);
            assert!(part.is_identity_order());
            let params = TrainParams { n_threads: 4, use_membuf: membuf, ..Default::default() };
            let hists =
                run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &[0u32]);
            assert_close(&hists[0], &reference_hist(&qm, &part, &grads, 0));
        }
    }

    #[test]
    fn mp_matches_reference_dense() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let params = TrainParams { n_threads: 4, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let hists = run_driver(ParallelMode::ModelParallel, &params, &qm, &part, &grads, &nodes);
        for (i, &n) in nodes.iter().enumerate() {
            assert_close(&hists[i], &reference_hist(&qm, &part, &grads, n));
        }
    }

    #[test]
    fn mp_matches_reference_sparse() {
        let (qm, grads, part) = setup(DatasetKind::YfccLike, true);
        let params = TrainParams { n_threads: 3, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let hists = run_driver(ParallelMode::ModelParallel, &params, &qm, &part, &grads, &nodes);
        for (i, &n) in nodes.iter().enumerate() {
            assert_close(&hists[i], &reference_hist(&qm, &part, &grads, n));
        }
    }

    #[test]
    fn dp_matches_reference_sparse() {
        let (qm, grads, part) = setup(DatasetKind::YfccLike, false);
        let params = TrainParams { n_threads: 2, use_membuf: false, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let hists = run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &nodes);
        for (i, &n) in nodes.iter().enumerate() {
            assert_close(&hists[i], &reference_hist(&qm, &part, &grads, n));
        }
    }

    #[test]
    fn scalar_kernel_toggle_matches_specialized() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let nodes = [3u32, 4, 2];
        for mode in [ParallelMode::DataParallel, ParallelMode::ModelParallel] {
            let fast = {
                let params = TrainParams { n_threads: 4, ..Default::default() };
                run_driver(mode, &params, &qm, &part, &grads, &nodes)
            };
            let scalar = {
                let params =
                    TrainParams { n_threads: 4, use_scalar_kernels: true, ..Default::default() };
                run_driver(mode, &params, &qm, &part, &grads, &nodes)
            };
            for i in 0..nodes.len() {
                assert_eq!(fast[i], scalar[i], "node {i} not bitwise equal across kernels");
            }
        }
    }

    #[test]
    fn block_configs_do_not_change_results() {
        let (qm, grads, part) = setup(DatasetKind::AirlineLike, true);
        let nodes = [3u32, 4, 2];
        let base = {
            let params = TrainParams { n_threads: 4, ..Default::default() };
            run_driver(ParallelMode::ModelParallel, &params, &qm, &part, &grads, &nodes)
        };
        for (f_blk, n_blk, b_blk) in [(1, 1, 0), (2, 2, 8), (4, 3, 4), (0, 0, 1)] {
            let params = TrainParams {
                n_threads: 4,
                blocks: BlockConfig {
                    row_blk_size: 100,
                    node_blk_size: n_blk,
                    feature_blk_size: f_blk,
                    bin_blk_size: b_blk,
                },
                ..Default::default()
            };
            let hists =
                run_driver(ParallelMode::ModelParallel, &params, &qm, &part, &grads, &nodes);
            for i in 0..nodes.len() {
                assert_close(&hists[i], &base[i]);
            }
            let dp = run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &nodes);
            for i in 0..nodes.len() {
                assert_close(&dp[i], &base[i]);
            }
        }
    }

    #[test]
    fn deterministic_dp_is_bitwise_reproducible() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let params = TrainParams { n_threads: 4, deterministic: true, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let a = run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &nodes);
        let b = run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &nodes);
        for i in 0..nodes.len() {
            assert_eq!(a[i], b[i], "node {i} not bitwise equal");
        }
    }

    #[test]
    fn pooled_replicas_stay_bitwise_reproducible_across_calls() {
        // The dirty-zeroing bug magnet: the second call reuses replicas the
        // first call dirtied. With row_blk forcing many tasks per slot the
        // dirty set is non-trivial.
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let params = TrainParams {
            n_threads: 4,
            deterministic: true,
            blocks: BlockConfig { row_blk_size: 64, ..Default::default() },
            ..Default::default()
        };
        let nodes = [3u32, 4, 2];
        let pool = ThreadPool::new(params.n_threads);
        let mut scratch = DriverScratch::new();
        let first = run_driver_with(
            ParallelMode::DataParallel,
            &params,
            &qm,
            &part,
            &grads,
            &nodes,
            &pool,
            &mut scratch,
        );
        // A second call over a *different* node set in between, to dirty
        // other lanes.
        let _ = run_driver_with(
            ParallelMode::DataParallel,
            &params,
            &qm,
            &part,
            &grads,
            &[2u32],
            &pool,
            &mut scratch,
        );
        let second = run_driver_with(
            ParallelMode::DataParallel,
            &params,
            &qm,
            &part,
            &grads,
            &nodes,
            &pool,
            &mut scratch,
        );
        for i in 0..nodes.len() {
            assert_eq!(first[i], second[i], "node {i} differs with pooled replicas");
        }
    }

    #[test]
    fn pooled_replicas_allocate_only_once() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let params = TrainParams { n_threads: 4, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let profile = Arc::new(Profile::new());
        let pool = ThreadPool::with_profile(params.n_threads, Arc::clone(&profile));
        let mut scratch = DriverScratch::new();
        let mut first_call_allocs = 0;
        for call in 0..3 {
            let _ = run_driver_with(
                ParallelMode::DataParallel,
                &params,
                &qm,
                &part,
                &grads,
                &nodes,
                &pool,
                &mut scratch,
            );
            let allocs = profile.scratch_allocs.load(Ordering::Relaxed);
            let reuses = profile.scratch_reuses.load(Ordering::Relaxed);
            if call == 0 {
                assert!(allocs > 0, "first call must allocate replicas");
                assert_eq!(reuses, 0);
                first_call_allocs = allocs;
            } else {
                assert_eq!(allocs, first_call_allocs, "steady state must not allocate");
                assert_eq!(reuses, first_call_allocs * call as u64);
            }
        }
    }

    #[test]
    fn membuf_and_global_grads_agree() {
        let (qm, grads, part_mb) = setup(DatasetKind::CriteoLike, true);
        let (_, _, part_nomb) = setup(DatasetKind::CriteoLike, false);
        let params_mb = TrainParams { n_threads: 2, ..Default::default() };
        let params_nomb = TrainParams { n_threads: 2, use_membuf: false, ..Default::default() };
        let nodes = [3u32, 4, 2];
        let a = run_driver(ParallelMode::ModelParallel, &params_mb, &qm, &part_mb, &grads, &nodes);
        let b =
            run_driver(ParallelMode::ModelParallel, &params_nomb, &qm, &part_nomb, &grads, &nodes);
        for i in 0..nodes.len() {
            assert_close(&a[i], &b[i]);
        }
    }

    #[test]
    fn empty_jobs_are_noop() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        let params = TrainParams { n_threads: 2, ..Default::default() };
        let pool = ThreadPool::new(2);
        let mut scratch = DriverScratch::new();
        let ctx =
            DriverCtx { qm: &qm, params: &params, pool: &pool, partition: &part, grads: &grads };
        build_hists_dp(&ctx, &mut scratch, &mut []);
        build_hists_mp(&ctx, &mut scratch, &mut []);
    }

    #[test]
    fn zero_row_jobs_emit_no_tasks_and_stay_zero() {
        let (qm, grads, part) = setup(DatasetKind::HiggsLike, true);
        // Manufacture an empty node: split node 2 sending every row left.
        part.apply_split(2, 5, 6, &|_, _| true, None);
        assert_eq!(part.node_len(6), 0);
        let params = TrainParams { n_threads: 4, ..Default::default() };
        let hists =
            run_driver(ParallelMode::DataParallel, &params, &qm, &part, &grads, &[3u32, 6, 4]);
        assert!(hists[1].iter().all(|&x| x == 0.0), "zero-row job must stay zeroed");
        assert_close(&hists[0], &reference_hist(&qm, &part, &grads, 3));
        assert_close(&hists[2], &reference_hist(&qm, &part, &grads, 4));
    }

    #[test]
    fn merge_ranges_coalesces() {
        let mut r = vec![5..7, 0..2, 1..3, 7..7, 6..9];
        merge_ranges(&mut r);
        assert_eq!(r, vec![0..3, 5..9]);
    }
}
