//! The HarpGBDT training engine.
//!
//! [`GbdtTrainer`] runs the boosting loop of Algorithm 1. Each tree is grown
//! by a *batch engine*: the growth queue pops up to `K` candidates (§IV-B),
//! ApplySplit partitions their rows, BuildHist fills the children's GHSum
//! cubes through a block-wise driver (§IV-A), and FindSplit pushes the next
//! generation of candidates. The parallel mode (Table II) decides which
//! driver runs each batch:
//!
//! * `DataParallel` / `ModelParallel` — always the respective driver;
//! * `Sync` — DP while the batch is narrower than the pool, MP in the
//!   middle, DP again when nodes shrink below a row threshold (the paper's
//!   "mix mode (DP, MP, DP)");
//! * `Async` — batch engine (DP) until the queue is as wide as the pool,
//!   then the barrier-free node-task phase (`async_mode`).

mod async_mode;
mod drivers;

pub use drivers::{build_hists_dp, build_hists_mp, DriverCtx, DriverScratch, HistJob};

use crate::ensemble::GbdtModel;
use crate::growth::GrowthQueue;
use crate::hist::{self, HistPool};
use crate::loss::GradPair;
use crate::params::{GrowthMethod, ParallelMode, TrainParams};
use crate::partition::RowPartition;
use crate::split::{better_of, SplitCandidate, SplitSettings};
use crate::tree::{NodeId, NodeStats, Tree};
use harp_binning::{
    BinningConfig, ChunkIoStats, LayoutOptions, QuantStore, QuantizedMatrix, MISSING_BIN,
};
use harp_data::Dataset;
use harp_metrics::{
    gauges, BreakdownReport, ConvergenceTrace, LedgerRecord, MemGauge, MemRegistry, PlanStats,
    RunLedger, TimeBreakdown, WorkerSkewReport,
};
use harp_parallel::{
    PhaseSpan, Profile, ProfileReport, Stopwatch, ThreadPool, TracePhase, TraceSink, TraceSnapshot,
};
use std::sync::Arc;

/// Below this average node size, SYNC mode's end phase switches back to DP.
const SYNC_SMALL_NODE_ROWS: usize = 512;

/// Validation metric for the eval set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalMetric {
    /// Area under the ROC curve (higher is better). Binary only.
    Auc,
    /// Binary cross-entropy (lower is better).
    LogLoss,
    /// Root mean squared error (lower is better).
    Rmse,
    /// Multiclass cross-entropy (lower is better). Softmax only.
    MulticlassLogLoss,
    /// Multiclass argmax error rate (lower is better). Softmax only.
    MulticlassError,
    /// Pinball (quantile) loss at `alpha` (lower is better).
    Pinball {
        /// Target quantile in `(0, 1)`.
        alpha: f32,
    },
    /// Mean Tweedie deviance at variance power `power` (lower is better).
    TweedieDeviance {
        /// Variance power in `(1, 2)`.
        power: f32,
    },
    /// Mean Huber loss with transition width `delta` (lower is better).
    HuberLoss {
        /// Quadratic/linear transition width.
        delta: f32,
    },
    /// Mean NDCG truncated at `k` over query groups (higher is better).
    /// Requires the eval dataset to carry query-group sizes.
    NdcgAt {
        /// Truncation depth.
        k: u32,
    },
}

impl EvalMetric {
    /// Whether larger values of this metric are better.
    pub fn higher_is_better(self) -> bool {
        matches!(self, EvalMetric::Auc | EvalMetric::NdcgAt { .. })
    }

    /// Short stable name for reports and ledgers (e.g. `"auc"`,
    /// `"pinball@0.9"`, `"ndcg@10"`).
    pub fn name(self) -> String {
        match self {
            EvalMetric::Auc => "auc".into(),
            EvalMetric::LogLoss => "logloss".into(),
            EvalMetric::Rmse => "rmse".into(),
            EvalMetric::MulticlassLogLoss => "mlogloss".into(),
            EvalMetric::MulticlassError => "merror".into(),
            EvalMetric::Pinball { alpha } => format!("pinball@{alpha}"),
            EvalMetric::TweedieDeviance { power } => format!("tweedie-deviance@{power}"),
            EvalMetric::HuberLoss { delta } => format!("huber@{delta}"),
            EvalMetric::NdcgAt { k } => format!("ndcg@{k}"),
        }
    }

    /// Computes the metric from row-major raw scores (`n_rows × n_groups`).
    /// `query_groups` carries consecutive group sizes for ranking metrics
    /// (ignored by the others).
    ///
    /// # Panics
    /// Panics when the metric does not fit the loss's group count, or for
    /// [`EvalMetric::NdcgAt`] without query groups.
    pub fn compute(
        self,
        labels: &[f32],
        raw: &[f32],
        model_loss: crate::params::LossKind,
        query_groups: Option<&[u32]>,
    ) -> f64 {
        let groups = model_loss.n_groups();
        match self {
            EvalMetric::Auc => {
                assert_eq!(groups, 1, "AUC requires a binary/scalar loss");
                harp_metrics::auc(labels, raw)
            }
            EvalMetric::LogLoss => {
                assert_eq!(groups, 1, "LogLoss requires a binary loss");
                let probs = model_loss.transform_scores(raw);
                harp_metrics::log_loss(labels, &probs)
            }
            EvalMetric::Rmse => {
                assert_eq!(groups, 1, "RMSE requires a scalar loss");
                harp_metrics::rmse(labels, raw)
            }
            EvalMetric::MulticlassLogLoss => {
                let probs = model_loss.transform_scores(raw);
                harp_metrics::multiclass_log_loss(labels, &probs, groups)
            }
            EvalMetric::MulticlassError => harp_metrics::multiclass_error(labels, raw, groups),
            EvalMetric::Pinball { alpha } => {
                assert_eq!(groups, 1, "pinball requires a scalar loss");
                harp_metrics::pinball_loss(labels, raw, alpha)
            }
            EvalMetric::TweedieDeviance { power } => {
                assert_eq!(groups, 1, "tweedie deviance requires a scalar loss");
                let mu = model_loss.transform_scores(raw);
                harp_metrics::tweedie_deviance(labels, &mu, power)
            }
            EvalMetric::HuberLoss { delta } => {
                assert_eq!(groups, 1, "huber loss requires a scalar loss");
                harp_metrics::huber_loss(labels, raw, delta)
            }
            EvalMetric::NdcgAt { k } => {
                assert_eq!(groups, 1, "ndcg requires a scalar loss");
                let qg = query_groups.expect("ndcg@k needs query-group sizes on the eval dataset");
                harp_metrics::ndcg_at_k(labels, raw, qg, k as usize)
            }
        }
    }
}

/// Validation configuration.
pub struct EvalOptions<'a> {
    /// Held-out data (raw features; the model routes on raw thresholds).
    pub data: &'a Dataset,
    /// Metric to track.
    pub metric: EvalMetric,
    /// Evaluate every `every` trees.
    pub every: usize,
    /// Stop after this many evaluations without improvement.
    pub early_stopping_rounds: Option<usize>,
}

/// Shape statistics of one built tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeShape {
    /// Leaf count.
    pub n_leaves: u32,
    /// Maximum depth.
    pub max_depth: u32,
}

/// Everything measured during a training run.
pub struct Diagnostics {
    /// Wall seconds per boosting round (= per tree for scalar losses; one
    /// round builds `n_groups` trees for softmax). Training only,
    /// evaluation excluded.
    pub per_tree_secs: Vec<f64>,
    /// Total training seconds (sum of `per_tree_secs`).
    pub train_secs: f64,
    /// Phase attribution (Fig. 4's quantity).
    pub breakdown: BreakdownReport,
    /// Pool profile (Tables I/VI metrics).
    pub profile: ProfileReport,
    /// Validation trace, when an eval set was provided.
    pub trace: Option<ConvergenceTrace>,
    /// Iteration with the best validation metric.
    pub best_iteration: Option<usize>,
    /// Per-tree shapes.
    pub tree_shapes: Vec<TreeShape>,
    /// Span ledger snapshot, when `TrainParams::trace` was enabled. Export
    /// with [`TraceSnapshot::to_chrome_trace`] for `chrome://tracing` /
    /// Perfetto.
    pub span_trace: Option<TraceSnapshot>,
    /// Per-phase worker busy-time skew derived from the span ledger.
    pub worker_skew: Option<WorkerSkewReport>,
    /// Per-round run ledger, when `TrainParams::ledger` was enabled: one
    /// record per boosting round with phase-time and counter deltas, the
    /// eval metric, tree shape, worker skew and memory-gauge bytes. Stream
    /// it with [`RunLedger::write_jsonl`].
    pub ledger: Option<RunLedger>,
}

impl Diagnostics {
    /// Mean seconds per boosting round — the paper's primary efficiency
    /// metric ("average training time per tree for the first 100 trees";
    /// rounds and trees coincide for the paper's binary tasks).
    pub fn mean_tree_secs(&self) -> f64 {
        if self.per_tree_secs.is_empty() {
            0.0
        } else {
            self.per_tree_secs.iter().sum::<f64>() / self.per_tree_secs.len() as f64
        }
    }
}

/// A trained model plus its diagnostics.
pub struct TrainOutput {
    /// The ensemble.
    pub model: GbdtModel,
    /// Measurements.
    pub diagnostics: Diagnostics,
}

/// The HarpGBDT trainer.
pub struct GbdtTrainer {
    params: TrainParams,
    binning: BinningConfig,
    layout: LayoutOptions,
}

impl GbdtTrainer {
    /// Creates a trainer after validating `params`.
    ///
    /// # Errors
    /// Returns the validation message for inconsistent parameters.
    pub fn new(params: TrainParams) -> Result<Self, String> {
        params.validate()?;
        Ok(Self { params, binning: BinningConfig::default(), layout: LayoutOptions::default() })
    }

    /// Overrides the histogram-initialization configuration.
    pub fn with_binning(mut self, binning: BinningConfig) -> Self {
        self.binning = binning;
        self
    }

    /// Overrides the storage-layout selection (u4 packing, feature
    /// bundling). The default auto-selects compressed layouts.
    pub fn with_layout(mut self, layout: LayoutOptions) -> Self {
        self.layout = layout;
        self
    }

    /// The trainer's parameters.
    pub fn params(&self) -> &TrainParams {
        &self.params
    }

    /// Quantizes `dataset` and trains.
    pub fn train(&self, dataset: &Dataset) -> TrainOutput {
        self.train_with_eval(dataset, None)
    }

    /// Quantizes `dataset` and trains with optional validation. Query-group
    /// sizes attached to the dataset flow into listwise objectives and
    /// ranking metrics.
    pub fn train_with_eval(&self, dataset: &Dataset, eval: Option<EvalOptions<'_>>) -> TrainOutput {
        let qm = QuantizedMatrix::from_matrix_opts(&dataset.features, self.binning, self.layout);
        self.train_prepared_grouped(
            &qm,
            &dataset.labels,
            None,
            dataset.query_groups.as_deref(),
            eval,
        )
    }

    /// Like [`train_with_eval`](Self::train_with_eval) but with the
    /// objective's data validation surfaced as an error instead of a panic
    /// (bad labels, missing query groups) — the CLI-friendly entry point.
    ///
    /// # Errors
    /// Returns the objective's validation message for unusable data.
    pub fn try_train_with_eval(
        &self,
        dataset: &Dataset,
        eval: Option<EvalOptions<'_>>,
    ) -> Result<TrainOutput, String> {
        let objective = self.params.loss.build();
        objective
            .validate_data(&dataset.labels, dataset.query_groups.as_deref())
            .map_err(|e| format!("training data rejected by {}: {e}", self.params.loss.name()))?;
        if let Some(e) = &eval {
            objective
                .validate_data(&e.data.labels, e.data.query_groups.as_deref())
                .map_err(|err| {
                    format!("eval data rejected by {}: {err}", self.params.loss.name())
                })?;
        }
        Ok(self.train_with_eval(dataset, eval))
    }

    /// Trains on an already-quantized matrix (lets experiments bin once and
    /// train many configurations on identical inputs).
    ///
    /// # Panics
    /// Panics if `labels.len() != qm.n_rows()`.
    pub fn train_prepared(
        &self,
        qm: &QuantizedMatrix,
        labels: &[f32],
        eval: Option<EvalOptions<'_>>,
    ) -> TrainOutput {
        self.train_prepared_weighted(qm, labels, None, eval)
    }

    /// Like [`train_prepared`](Self::train_prepared) with optional per-row
    /// sample weights, which scale each row's gradient pair.
    ///
    /// # Panics
    /// Panics if `labels.len() != qm.n_rows()` or the weights length differs.
    pub fn train_prepared_weighted(
        &self,
        qm: &QuantizedMatrix,
        labels: &[f32],
        weights: Option<&[f32]>,
        eval: Option<EvalOptions<'_>>,
    ) -> TrainOutput {
        self.train_prepared_grouped(qm, labels, weights, None, eval)
    }

    /// The full prepared-input entry point: optional per-row weights plus
    /// optional consecutive query-group sizes (required by listwise
    /// objectives such as LambdaRank and by the `ndcg@k` metric).
    ///
    /// # Panics
    /// Panics if `labels.len() != qm.n_rows()`, the weights length differs,
    /// or the objective rejects the data (use
    /// [`try_train_with_eval`](Self::try_train_with_eval) for a `Result`).
    pub fn train_prepared_grouped(
        &self,
        qm: &QuantizedMatrix,
        labels: &[f32],
        weights: Option<&[f32]>,
        query_groups: Option<&[u32]>,
        eval: Option<EvalOptions<'_>>,
    ) -> TrainOutput {
        self.train_store_grouped(qm, labels, weights, query_groups, eval)
    }

    /// Trains through any [`QuantStore`] — the in-memory matrix or an
    /// out-of-core [`harp_binning::ChunkedStore`]. Chunked training is
    /// bitwise identical to in-core on the same data (see
    /// `tests/external_memory.rs`).
    ///
    /// # Panics
    /// Panics if `labels.len() != store.n_rows()`.
    pub fn train_store(
        &self,
        store: &dyn QuantStore,
        labels: &[f32],
        eval: Option<EvalOptions<'_>>,
    ) -> TrainOutput {
        self.train_store_grouped(store, labels, None, None, eval)
    }

    /// Like [`train_store_grouped`](Self::train_store_grouped) with the
    /// objective's data validation surfaced as an error instead of a panic —
    /// the CLI-friendly external-memory entry point.
    ///
    /// # Errors
    /// Returns the objective's validation message for unusable data.
    pub fn try_train_store_grouped(
        &self,
        store: &dyn QuantStore,
        labels: &[f32],
        weights: Option<&[f32]>,
        query_groups: Option<&[u32]>,
        eval: Option<EvalOptions<'_>>,
    ) -> Result<TrainOutput, String> {
        let objective = self.params.loss.build();
        objective
            .validate_data(labels, query_groups)
            .map_err(|e| format!("training data rejected by {}: {e}", self.params.loss.name()))?;
        if let Some(e) = &eval {
            objective
                .validate_data(&e.data.labels, e.data.query_groups.as_deref())
                .map_err(|err| {
                    format!("eval data rejected by {}: {err}", self.params.loss.name())
                })?;
        }
        Ok(self.train_store_grouped(store, labels, weights, query_groups, eval))
    }

    /// The full store-mediated entry point; see
    /// [`train_prepared_grouped`](Self::train_prepared_grouped) for the
    /// weight/group semantics.
    ///
    /// # Panics
    /// Panics if `labels.len() != store.n_rows()`, the weights length
    /// differs, or the objective rejects the data.
    pub fn train_store_grouped(
        &self,
        store: &dyn QuantStore,
        labels: &[f32],
        weights: Option<&[f32]>,
        query_groups: Option<&[u32]>,
        eval: Option<EvalOptions<'_>>,
    ) -> TrainOutput {
        let qm = store;
        assert_eq!(labels.len(), qm.n_rows(), "one label per row required");
        let params = &self.params;
        let objective = params.loss.build();
        if let Err(e) = objective.validate_data(labels, query_groups) {
            panic!("training data rejected by {}: {e}", params.loss.name());
        }
        let profile = Arc::new(Profile::new());
        let mut pool = ThreadPool::with_profile(params.n_threads, Arc::clone(&profile));
        // `None` unless tracing is both requested and compiled in; every
        // recording site downstream branches on this option, so the disabled
        // path performs no extra clock reads.
        let sink = TraceSink::new_if(
            params.trace.enabled,
            params.n_threads,
            params.trace.spans_per_worker,
        );
        if let Some(s) = &sink {
            pool.install_trace(Arc::clone(s));
        }
        let sink = pool.trace().cloned();
        let tsink = sink.as_deref();
        let coord = params.n_threads; // coordinator lane of the sink
        let breakdown = TimeBreakdown::new();
        let n = qm.n_rows();
        let groups = objective.n_groups();

        let base_scores = objective.base_scores(labels);
        // Row-major n x groups raw scores.
        let mut preds = vec![0.0f32; n * groups];
        for r in 0..n {
            preds[r * groups..(r + 1) * groups].copy_from_slice(&base_scores);
        }
        let mut grads: Vec<GradPair> = vec![[0.0; 2]; n];
        let max_nodes = 2 * params.max_leaves() + 8;
        let mut engine = TreeEngine {
            qm,
            params,
            pool: &pool,
            breakdown: &breakdown,
            partition: RowPartition::new(n, max_nodes, params.use_membuf),
            hist_pool: HistPool::with_width(
                crate::hist::hist_width_for(qm),
                params.hist_cache_bytes,
            ),
            scratch: DriverScratch::new(),
            settings: SplitSettings {
                lambda: params.lambda,
                gamma: params.gamma,
                min_child_weight: params.min_child_weight,
            },
            feature_mask: Vec::new(),
            pops: 0,
            popped: 0,
        };

        // Run-ledger state: byte gauges plus previous-round baselines for
        // delta computation. Gauges are only allocated (and pools only pay
        // the per-event `fetch_add`) when the ledger is on.
        let mut mem_registry = params.ledger.enabled.then(MemRegistry::new);
        let (hist_pool_g, hist_cache_g, scratch_g, membuf_g, partition_g, flat_g) =
            match &mut mem_registry {
                Some(reg) => (
                    Some(reg.gauge(gauges::HIST_POOL)),
                    Some(reg.gauge(gauges::HIST_CACHE)),
                    Some(reg.gauge(gauges::SCRATCH_ARENA)),
                    Some(reg.gauge(gauges::MEMBUF)),
                    Some(reg.gauge(gauges::PARTITION)),
                    Some(reg.gauge(gauges::FLAT_FOREST)),
                ),
                None => (None, None, None, None, None, None),
            };
        // Quantized-storage accounting: the decoded-equivalent bytes of the
        // store (the dominant allocation of an in-core run) plus, for a
        // chunked store, the resident decoded slab bytes whose high-water
        // mark proves a --mem-budget run stayed under its budget.
        let chunk_g = match &mut mem_registry {
            Some(reg) => {
                reg.gauge(gauges::QUANT_STORE).observe(qm.storage_bytes() as u64);
                (qm.as_single().is_none()).then(|| reg.gauge(gauges::CHUNK_RESIDENT))
            }
            None => None,
        };
        // Cache hit/miss/eviction counters are cheap relaxed atomics; wire
        // them unconditionally so whole-run profile reports always have them.
        engine.hist_pool.instrument(Arc::clone(&profile), hist_pool_g, hist_cache_g);
        if let Some(g) = scratch_g {
            engine.scratch.set_replica_gauge(g);
        }
        let mut run_ledger = params.ledger.enabled.then(RunLedger::new);
        let mut prev_breakdown = BreakdownReport::default();
        let mut prev_counters = profile.snapshot();
        let mut prev_io: ChunkIoStats = qm.io_stats();
        let mut prev_trace_counters = sink.as_ref().map(|s| s.counter_totals());
        let mut prev_lane_busy = sink.as_ref().map(|s| s.phase_busy_by_lane());

        // Record the layout decisions made at quantization time plus the SIMD
        // tier the kernels will dispatch to. Placed after the baseline
        // snapshot so the round-1 ledger delta carries them.
        let layout = qm.layout_stats();
        profile.add_layout_events(
            layout.cols_u4,
            layout.cols_bundled,
            layout.bundle_conflicts,
            crate::kernels::simd_tier().as_u64(),
        );

        // Evaluation state.
        let mut trace = eval.as_ref().map(|e| ConvergenceTrace::new(e.metric.higher_is_better()));
        let mut eval_preds: Vec<f32> = eval
            .as_ref()
            .map(|e| {
                let mut p = vec![0.0f32; e.data.n_rows() * groups];
                for r in 0..e.data.n_rows() {
                    p[r * groups..(r + 1) * groups].copy_from_slice(&base_scores);
                }
                p
            })
            .unwrap_or_default();
        let mut best_metric: Option<f64> = None;
        let mut best_iteration: Option<usize> = None;
        let mut evals_since_best = 0usize;

        let mut trees: Vec<Tree> = Vec::with_capacity(params.n_trees);
        let mut per_tree_secs = Vec::with_capacity(params.n_trees);
        let mut tree_shapes = Vec::with_capacity(params.n_trees);
        let mut train_secs = 0.0f64;

        for iter in 0..params.n_trees {
            let sw = Stopwatch::start();
            for group in 0..groups {
                {
                    let _phase = PhaseSpan::begin(
                        tsink,
                        coord,
                        TracePhase::Gradients,
                        0,
                        iter as u32,
                        Some(&breakdown.other_ns),
                    );
                    let scaling = crate::loss::RowScaling {
                        weights,
                        subsample: params.subsample,
                        seed: params.seed ^ (iter as u64).wrapping_mul(0x9E37_79B9),
                    };
                    crate::objective::compute_gradients_group(
                        objective.as_ref(),
                        &pool,
                        &preds,
                        labels,
                        query_groups,
                        group,
                        &scaling,
                        &mut grads,
                    );
                }
                engine.sample_features(params, iter as u64, group as u64);
                let tree = engine.build_tree(&grads);
                {
                    let _phase = PhaseSpan::begin(
                        tsink,
                        coord,
                        TracePhase::Other,
                        0,
                        iter as u32,
                        Some(&breakdown.other_ns),
                    );
                    engine.update_predictions(&tree, &mut preds, groups, group);
                }
                tree_shapes.push(TreeShape {
                    n_leaves: tree.n_leaves() as u32,
                    max_depth: tree.max_depth(),
                });
                trees.push(tree);
            }
            let secs = sw.elapsed_secs();
            profile.add_wall_ns(sw.elapsed_ns());
            train_secs += secs;
            per_tree_secs.push(secs);

            // Validation (outside the timed region). Early stopping raises a
            // flag instead of breaking so the round's ledger record is still
            // pushed below.
            let mut round_metric: Option<f64> = None;
            let mut stop = false;
            if let Some(e) = &eval {
                if (iter + 1) % e.every.max(1) == 0 || iter + 1 == params.n_trees {
                    for group in 0..groups {
                        let tree = &trees[trees.len() - groups + group];
                        incremental_eval(
                            tree,
                            e.data,
                            &mut eval_preds,
                            groups,
                            group,
                            &breakdown,
                            tsink,
                            flat_g.as_deref(),
                        );
                    }
                    let metric = e.metric.compute(
                        &e.data.labels,
                        &eval_preds,
                        params.loss,
                        e.data.query_groups.as_deref(),
                    );
                    if let Some(tr) = &mut trace {
                        tr.record(iter + 1, train_secs, metric);
                    }
                    round_metric = Some(metric);
                    let improved = match best_metric {
                        None => true,
                        Some(b) => {
                            if e.metric.higher_is_better() {
                                metric > b
                            } else {
                                metric < b
                            }
                        }
                    };
                    if improved {
                        best_metric = Some(metric);
                        best_iteration = Some(iter + 1);
                        evals_since_best = 0;
                    } else {
                        evals_since_best += 1;
                        if let Some(rounds) = e.early_stopping_rounds {
                            if evals_since_best >= rounds {
                                stop = true;
                            }
                        }
                    }
                } else {
                    // Keep eval predictions current even on non-eval trees so
                    // the next evaluation uses all trees.
                    for group in 0..groups {
                        let tree = &trees[trees.len() - groups + group];
                        incremental_eval(
                            tree,
                            e.data,
                            &mut eval_preds,
                            groups,
                            group,
                            &breakdown,
                            tsink,
                            flat_g.as_deref(),
                        );
                    }
                }
            }

            // Chunk-I/O accounting: fold this round's store counters into
            // the profile (all-zero deltas for an in-core store) and refresh
            // the resident gauge. Runs before the ledger hook so the round's
            // counter delta carries its own chunk traffic.
            {
                let io = qm.io_stats();
                profile.add_chunk_io_events(
                    io.chunk_loads - prev_io.chunk_loads,
                    io.chunk_evictions - prev_io.chunk_evictions,
                    io.chunk_prefetch_hits - prev_io.chunk_prefetch_hits,
                );
                prev_io = io;
                if let Some(g) = &chunk_g {
                    g.observe(io.resident_bytes);
                    g.observe_peak(io.resident_high_water);
                }
            }

            // Ledger hook: snapshot this round's deltas.
            if let (Some(ledger), Some(registry)) = (&mut run_ledger, &mem_registry) {
                let bd = breakdown.report();
                let round_bd = bd.since(&prev_breakdown);
                prev_breakdown = bd;
                let now = profile.snapshot();
                let round_counters = now.delta(&prev_counters);
                prev_counters = now;
                let mut counters: Vec<(String, u64)> =
                    round_counters.named().iter().map(|&(n, v)| (n.to_string(), v)).collect();
                if let (Some(s), Some(prev)) = (&sink, &mut prev_trace_counters) {
                    let now = s.counter_totals();
                    let d = now.delta(prev);
                    *prev = now;
                    counters.push(("queue_pops".into(), d.queue_pops));
                    counters.push(("queue_pushes".into(), d.queue_pushes));
                    counters.push(("queue_spin_ns".into(), d.queue_spin_ns));
                }
                let mut skew: Vec<(String, f64)> = Vec::new();
                if let (Some(s), Some(prev)) = (&sink, &mut prev_lane_busy) {
                    let now = s.phase_busy_by_lane();
                    // Workers only: the coordinator lane mostly waits and
                    // would drown the phase imbalance signal.
                    let workers = now.len().saturating_sub(1);
                    let rows: Vec<(&'static str, Vec<u64>)> = TracePhase::all()
                        .into_iter()
                        .map(|p| {
                            let row = (0..workers)
                                .map(|l| now[l][p as usize].saturating_sub(prev[l][p as usize]))
                                .collect();
                            (p.name(), row)
                        })
                        .collect();
                    *prev = now;
                    let report = WorkerSkewReport::from_phase_ns(&rows);
                    skew = report.rows.into_iter().map(|r| (r.phase, r.imbalance)).collect();
                }
                if let Some(g) = &membuf_g {
                    g.observe(engine.partition.membuf_bytes() as u64);
                }
                if let Some(g) = &partition_g {
                    g.observe(engine.partition.index_bytes() as u64);
                }
                let shapes = &tree_shapes[tree_shapes.len() - groups..];
                let (pops, popped) = engine.take_pop_stats();
                let (plan_batches, plan_tasks, ext) = engine.scratch.take_plan_stats();
                ledger.push(LedgerRecord {
                    round: (iter + 1) as u64,
                    elapsed_secs: train_secs,
                    round_secs: secs,
                    phase_secs: vec![
                        ("build_hist".into(), round_bd.build_hist_secs),
                        ("find_split".into(), round_bd.find_split_secs),
                        ("apply_split".into(), round_bd.apply_split_secs),
                        ("predict".into(), round_bd.predict_secs),
                        ("other".into(), round_bd.other_secs),
                    ],
                    counters,
                    eval_metric: round_metric,
                    n_leaves: shapes.iter().map(|s| s.n_leaves).max().unwrap_or(0),
                    max_depth: shapes.iter().map(|s| s.max_depth).max().unwrap_or(0),
                    mean_k_per_pop: if pops > 0 { popped as f64 / pops as f64 } else { 0.0 },
                    mem: registry.snapshot(),
                    skew,
                    plan: PlanStats {
                        batches: plan_batches,
                        tasks: plan_tasks,
                        row_blk: ext.row_blk as u64,
                        node_blk: ext.node_blk as u64,
                        feature_blk: ext.feature_blk as u64,
                        bin_blk: ext.bin_blk as u64,
                        auto: ext.auto,
                    },
                    latency: Default::default(),
                });
            }
            if stop {
                break;
            }
        }

        let (span_trace, worker_skew) = match &sink {
            Some(s) => {
                let snap = s.snapshot();
                let skew = WorkerSkewReport::from_phase_ns(&snap.worker_phase_ns());
                (Some(snap), Some(skew))
            }
            None => (None, None),
        };
        let diagnostics = Diagnostics {
            train_secs,
            per_tree_secs,
            breakdown: breakdown.report(),
            profile: profile.report(params.n_threads),
            trace,
            best_iteration,
            tree_shapes,
            span_trace,
            worker_skew,
            ledger: run_ledger,
        };
        TrainOutput {
            model: GbdtModel::new(trees, base_scores, params.loss, qm.n_features()),
            diagnostics,
        }
    }
}

/// Adds one tree's contribution to group `group` of the row-major eval
/// score buffer, through the flat blocked engine (attributed to the
/// Predict phase). Bitwise identical to summing `tree.predict` per row.
#[allow(clippy::too_many_arguments)]
fn incremental_eval(
    tree: &Tree,
    data: &Dataset,
    preds: &mut [f32],
    groups: usize,
    group: usize,
    breakdown: &TimeBreakdown,
    trace: Option<&TraceSink>,
    flat_gauge: Option<&MemGauge>,
) {
    let flat = crate::predict::FlatForest::single_tree(tree, data.n_features());
    if let Some(g) = flat_gauge {
        g.observe(flat.memory_bytes() as u64);
    }
    let mut predictor = crate::predict::Predictor::new(&flat).with_breakdown(breakdown);
    if let Some(sink) = trace {
        predictor = predictor.with_trace(sink);
    }
    predictor.accumulate_raw(&data.features, preds, groups, group);
}

/// Per-tree construction engine; buffers persist across trees.
struct TreeEngine<'a> {
    qm: &'a dyn QuantStore,
    params: &'a TrainParams,
    pool: &'a ThreadPool,
    breakdown: &'a TimeBreakdown,
    partition: RowPartition,
    hist_pool: HistPool,
    /// Replica arena and task vectors reused by the drivers across
    /// frontiers and trees.
    scratch: DriverScratch,
    settings: SplitSettings,
    /// Per-tree column-subsampling mask; empty = all features allowed.
    feature_mask: Vec<bool>,
    /// Growth-queue pop count since the last ledger snapshot (batch engine
    /// only; ASYNC's node tasks pop one node each and are not counted).
    pops: u64,
    /// Candidates popped across those pops — `popped / pops` is the round's
    /// effective K.
    popped: u64,
}

impl<'a> TreeEngine<'a> {
    /// The span ledger installed on the pool, if tracing is enabled. The
    /// returned borrow is tied to the pool, not `self`, so spans can stay
    /// open across `&mut self` calls.
    fn sink(&self) -> Option<&'a TraceSink> {
        self.pool.trace().map(Arc::as_ref)
    }

    /// Lane index for spans recorded by the coordinating thread.
    fn coord_lane(&self) -> usize {
        self.pool.num_threads()
    }

    /// Takes and resets the growth-queue pop statistics: `(pops, candidates
    /// popped)` since the previous call.
    fn take_pop_stats(&mut self) -> (u64, u64) {
        let out = (self.pops, self.popped);
        self.pops = 0;
        self.popped = 0;
        out
    }

    /// Regenerates the per-tree column-subsampling mask (empty when
    /// `colsample_bytree == 1`). Deterministic in `(params.seed, iter,
    /// group)`; at least one feature is always kept.
    fn sample_features(&mut self, params: &TrainParams, iter: u64, group: u64) {
        self.feature_mask.clear();
        if params.colsample_bytree >= 1.0 {
            return;
        }
        let m = self.qm.n_features();
        let base = params.seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (group << 32);
        self.feature_mask = (0..m)
            .map(|f| {
                let h = crate::loss::hash64(base ^ (f as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                ((h >> 11) as f64 / (1u64 << 53) as f64) < f64::from(params.colsample_bytree)
            })
            .collect();
        if !self.feature_mask.iter().any(|&b| b) {
            let h = crate::loss::hash64(base) as usize % m;
            self.feature_mask[h] = true;
        }
    }

    fn mask(&self) -> Option<&[bool]> {
        if self.feature_mask.is_empty() {
            None
        } else {
            Some(&self.feature_mask)
        }
    }

    fn build_tree(&mut self, grads: &[GradPair]) -> Tree {
        self.partition.reset(grads);
        let mut root_stats = NodeStats { g: 0.0, h: 0.0, count: grads.len() as u32 };
        for gp in grads {
            root_stats.g += f64::from(gp[0]);
            root_stats.h += f64::from(gp[1]);
        }
        let mut tree = Tree::new_root(root_stats);
        let mut queue = GrowthQueue::new(self.params.growth);

        // Root histogram + split.
        {
            let mut jobs = vec![HistJob { node: 0, buf: self.hist_pool.alloc() }];
            self.run_driver(grads, &mut jobs);
            let found = self.find_splits(&tree, &jobs);
            let HistJob { buf, .. } = jobs.pop().expect("one job");
            match found.into_iter().next().flatten() {
                Some(cand) => {
                    self.hist_pool.cache_insert(0, buf, cand.split.gain);
                    queue.push(0, 0, cand);
                }
                None => self.hist_pool.release(buf),
            }
        }

        let mut leaves = 1usize;
        match self.params.mode {
            ParallelMode::Async => {
                // Begin phase: grow with the batch engine until the frontier
                // is as wide as the pool, then go barrier-free.
                while leaves < self.params.max_leaves()
                    && !queue.is_empty()
                    && queue.len() < self.params.n_threads
                {
                    if !self.grow_one_batch(grads, &mut tree, &mut queue, &mut leaves) {
                        break;
                    }
                }
                async_mode::run_async(self, grads, &mut tree, &mut queue, &mut leaves);
            }
            _ => {
                while leaves < self.params.max_leaves() {
                    if !self.grow_one_batch(grads, &mut tree, &mut queue, &mut leaves) {
                        break;
                    }
                }
            }
        }

        // Remaining candidates stay leaves; their cached hists are recycled.
        self.hist_pool.clear_cache();
        let _ = queue.drain();

        // Leaf weights (Eq. 2), scaled by the learning rate. `max_delta_step`
        // caps the unscaled Newton step first (0 = off), which tames the
        // run-away leaves of log-link objectives.
        let lr = f64::from(self.params.learning_rate);
        let lambda = self.params.lambda;
        let cap = self.params.max_delta_step;
        let leaf_ids: Vec<NodeId> = tree.leaf_ids().collect();
        for id in leaf_ids {
            let node = tree.node_mut(id);
            let mut w = node.stats.optimal_weight(lambda);
            if cap > 0.0 {
                w = w.clamp(-cap, cap);
            }
            node.weight = (lr * w) as f32;
        }
        tree
    }

    /// Pops one batch, splits it, builds children histograms and queues the
    /// next candidates. Returns `false` when the queue is exhausted.
    fn grow_one_batch(
        &mut self,
        grads: &[GradPair],
        tree: &mut Tree,
        queue: &mut GrowthQueue,
        leaves: &mut usize,
    ) -> bool {
        let batch = queue.pop_batch(self.params.effective_k(), self.params.max_leaves() - *leaves);
        if batch.is_empty() {
            return false;
        }
        self.pops += 1;
        self.popped += batch.len() as u64;

        // ApplySplit: update the tree, then partition rows node by node
        // (chunk-parallel within a node for wide spans, node-parallel when
        // the batch is large).
        let mut splits: Vec<(NodeId, NodeId, NodeId)> = Vec::with_capacity(batch.len());
        {
            let _phase = PhaseSpan::begin(
                self.sink(),
                self.coord_lane(),
                TracePhase::ApplySplit,
                batch[0].node,
                batch.len() as u32,
                Some(&self.breakdown.apply_split_ns),
            );
            for c in &batch {
                let (l, r) = tree.apply_split(c.node, c.cand.split, c.cand.left, c.cand.right);
                splits.push((c.node, l, r));
                *leaves += 1;
            }
            // Routing bins for the whole frontier come from one ascending
            // chunk sweep (a no-op change for in-core stores, which borrow
            // their routing columns per split).
            let items: Vec<(&[u32], &crate::tree::SplitData)> = splits
                .iter()
                .zip(&batch)
                .map(|(&(parent, _, _), c)| (self.partition.rows(parent), &c.cand.split))
                .collect();
            let preds = split_preds_batch(self.qm, &items);
            drop(items);
            if batch.len() >= self.pool.num_threads() * 2 {
                let partition = &self.partition;
                let splits_ro = &splits;
                let preds_ro = &preds;
                let trace = self.sink();
                self.pool.parallel_for(batch.len(), |i, w| {
                    let (parent, l, r) = splits_ro[i];
                    let _span = trace.map(|s| s.span(w, TracePhase::ApplySplit, parent, i as u32));
                    let pred = &preds_ro[i];
                    partition.apply_split(parent, l, r, &|pos, row| pred.goes_left(pos, row), None);
                });
            } else {
                for (i, &(parent, l, r)) in splits.iter().enumerate() {
                    let pred = &preds[i];
                    self.partition.apply_split(parent, l, r, &|pos, row| pred.goes_left(pos, row), Some(self.pool));
                }
            }
            for &(_, l, r) in &splits {
                tree.node_mut(l).stats.count = self.partition.node_len(l) as u32;
                tree.node_mut(r).stats.count = self.partition.node_len(r) as u32;
            }
        }

        // Plan histogram jobs: fresh builds plus parent−sibling subtractions.
        let mut fresh: Vec<HistJob> = Vec::new();
        // (large_node, parent_buf, index of the small sibling in `fresh`).
        let mut subs: Vec<(NodeId, Vec<f64>, usize)> = Vec::new();
        for &(parent, l, r) in &splits {
            let l_el = self.eligible(tree, l);
            let r_el = self.eligible(tree, r);
            let parent_buf = self.hist_pool.cache_take(parent);
            match (l_el, r_el, parent_buf) {
                (true, true, Some(pbuf)) if self.params.hist_subtraction => {
                    let (small, large) = if tree.node(l).stats.count <= tree.node(r).stats.count {
                        (l, r)
                    } else {
                        (r, l)
                    };
                    fresh.push(HistJob { node: small, buf: self.hist_pool.alloc() });
                    subs.push((large, pbuf, fresh.len() - 1));
                }
                (l_el, r_el, parent_buf) => {
                    if let Some(pbuf) = parent_buf {
                        self.hist_pool.release(pbuf);
                    }
                    if l_el {
                        fresh.push(HistJob { node: l, buf: self.hist_pool.alloc() });
                    }
                    if r_el {
                        fresh.push(HistJob { node: r, buf: self.hist_pool.alloc() });
                    }
                }
            }
        }

        // BuildHist (the hotspot).
        {
            let _phase = PhaseSpan::begin(
                self.sink(),
                self.coord_lane(),
                TracePhase::BuildHist,
                batch[0].node,
                fresh.len() as u32,
                Some(&self.breakdown.build_hist_ns),
            );
            self.run_driver(grads, &mut fresh);
            if !subs.is_empty() {
                let fresh_ro: &[HistJob] = &fresh;
                struct SubSlot(*mut f64, usize, NodeId);
                unsafe impl Send for SubSlot {}
                unsafe impl Sync for SubSlot {}
                let slots: Vec<SubSlot> = subs
                    .iter_mut()
                    .map(|(large, buf, si)| SubSlot(buf.as_mut_ptr(), *si, *large))
                    .collect();
                let width = self.hist_pool.width();
                let trace = self.sink();
                self.pool.parallel_for(slots.len(), |i, w| {
                    let SubSlot(ptr, small_idx, large) = slots[i];
                    let _span = trace.map(|s| s.span(w, TracePhase::Reduce, large, i as u32));
                    // SAFETY: each sub owns its parent buffer exclusively.
                    let buf = unsafe { std::slice::from_raw_parts_mut(ptr, width) };
                    hist::subtract_in_place(buf, &fresh_ro[small_idx].buf);
                });
            }
        }

        // FindSplit on all children that got a histogram.
        let mut jobs: Vec<HistJob> = fresh;
        for (large, pbuf, _) in subs {
            jobs.push(HistJob { node: large, buf: pbuf });
        }
        let found = {
            let _phase = PhaseSpan::begin(
                self.sink(),
                self.coord_lane(),
                TracePhase::FindSplit,
                batch[0].node,
                jobs.len() as u32,
                Some(&self.breakdown.find_split_ns),
            );
            self.find_splits(tree, &jobs)
        };
        for (job, cand) in jobs.into_iter().zip(found) {
            match cand {
                Some(cand) => {
                    let depth = tree.node(job.node).depth;
                    self.hist_pool.cache_insert(job.node, job.buf, cand.split.gain);
                    queue.push(job.node, depth, cand);
                }
                None => self.hist_pool.release(job.buf),
            }
        }
        true
    }

    /// Whether `node` may be split further.
    fn eligible(&self, tree: &Tree, node: NodeId) -> bool {
        let n = tree.node(node);
        n.depth < self.max_depth_limit() && n.stats.count >= 2
    }

    fn max_depth_limit(&self) -> u32 {
        match self.params.growth {
            GrowthMethod::Depthwise => self.params.tree_size,
            GrowthMethod::Leafwise => u32::MAX,
        }
    }

    /// Dispatches a batch of histogram jobs to the configured driver.
    fn run_driver(&mut self, grads: &[GradPair], jobs: &mut [HistJob]) {
        if jobs.is_empty() {
            return;
        }
        let use_mp = match self.params.mode {
            ParallelMode::DataParallel => false,
            ParallelMode::ModelParallel => true,
            // ASYNC's begin phase behaves like DP.
            ParallelMode::Async => false,
            ParallelMode::Sync => {
                let total_rows: usize = jobs.iter().map(|j| self.partition.node_len(j.node)).sum();
                let avg = total_rows / jobs.len().max(1);
                // (DP, MP, DP): DP while the frontier is narrow, DP again
                // once nodes are small, MP in between.
                jobs.len() >= self.pool.num_threads() / 2 && avg >= SYNC_SMALL_NODE_ROWS
            }
        };
        let ctx = DriverCtx {
            qm: self.qm,
            params: self.params,
            pool: self.pool,
            partition: &self.partition,
            grads,
        };
        if use_mp {
            drivers::build_hists_mp(&ctx, &mut self.scratch, jobs);
        } else {
            drivers::build_hists_dp(&ctx, &mut self.scratch, jobs);
        }
    }

    /// Finds the best split of every job's node, feature-chunk parallel.
    fn find_splits(&self, tree: &Tree, jobs: &[HistJob]) -> Vec<Option<SplitCandidate>> {
        let m = self.qm.n_features();
        if jobs.is_empty() || m == 0 {
            return vec![None; jobs.len()];
        }
        let t = self.pool.num_threads();
        let n_chunks = ((4 * t).div_ceil(jobs.len())).clamp(1, m);
        let chunk = m.div_ceil(n_chunks);
        let n_chunks = m.div_ceil(chunk);
        // Partial results per (job, chunk), written by exactly one task.
        struct Partials(*mut Option<SplitCandidate>);
        unsafe impl Send for Partials {}
        unsafe impl Sync for Partials {}
        impl Partials {
            fn get(&self) -> *mut Option<SplitCandidate> {
                self.0
            }
        }
        let mut partials: Vec<Option<SplitCandidate>> = vec![None; jobs.len() * n_chunks];
        let ptr = Partials(partials.as_mut_ptr());
        let mapper = self.qm.mapper();
        let settings = &self.settings;
        let mask = self.mask();
        let trace = self.sink();
        self.pool.parallel_for(jobs.len() * n_chunks, |i, w| {
            let job_idx = i / n_chunks;
            let c = i % n_chunks;
            let f_lo = c * chunk;
            let f_hi = (f_lo + chunk).min(m);
            let job = &jobs[job_idx];
            let _span = trace.map(|s| s.span(w, TracePhase::FindSplit, job.node, c as u32));
            let node = tree.node(job.node);
            let cand = crate::split::find_split_masked(
                &job.buf,
                &node.stats,
                mapper,
                f_lo..f_hi,
                settings,
                mask,
            );
            // SAFETY: slot `i` is written by exactly this task.
            unsafe { *ptr.get().add(i) = cand };
        });
        (0..jobs.len())
            .map(|j| {
                let mut best = None;
                for c in 0..n_chunks {
                    best = better_of(best, partials[j * n_chunks + c]);
                }
                best
            })
            .collect()
    }

    /// Adds each leaf's weight to its rows' predictions (group `offset` of
    /// a row-major `n x stride` score buffer).
    fn update_predictions(&self, tree: &Tree, preds: &mut [f32], stride: usize, offset: usize) {
        let leaf_ids: Vec<NodeId> = tree.leaf_ids().collect();
        struct Ptr(*mut f32);
        unsafe impl Send for Ptr {}
        unsafe impl Sync for Ptr {}
        impl Ptr {
            fn get(&self) -> *mut f32 {
                self.0
            }
        }
        let ptr = Ptr(preds.as_mut_ptr());
        let partition = &self.partition;
        self.pool.parallel_for(leaf_ids.len(), |i, _| {
            let id = leaf_ids[i];
            let w = tree.node(id).weight;
            // SAFETY: leaves own disjoint row sets.
            for &row in partition.rows(id) {
                unsafe { *ptr.get().add(row as usize * stride + offset) += w };
            }
        });
    }
}

/// How a [`SplitPred`] resolves a row's routing bin.
enum SplitRoute<'a> {
    /// Dense u8 column borrow (in-core fast path).
    Dense(&'a [u8]),
    /// Bundled synthetic column borrow plus the feature's slot window.
    Bundled { col: &'a [u8], lo: u16, width: u16 },
    /// Per-row CSR binary search (in-core sparse).
    Sparse(&'a QuantizedMatrix),
    /// Owned copies of the node's row list and its effective routing bins,
    /// gathered chunk by chunk up front (out-of-core stores).
    Gathered { rows: Vec<u32>, bins: Vec<u8> },
}

/// The left/right routing predicate for one split over binned data.
pub(crate) struct SplitPred<'a> {
    f: usize,
    bin: u8,
    default_left: bool,
    route: SplitRoute<'a>,
}

/// Builds the routing predicate for `split` over a node whose (ascending)
/// row list is `rows`. In-core stores borrow the routing column directly —
/// the exact pre-trait fast paths, `rows` unused; a chunked store gathers
/// the node's effective bins once here, so the partition hot loop never
/// pins chunks. Call this BEFORE `RowPartition::apply_split` mutates the
/// node's span: the gathered route owns its copies and stays valid through
/// the partition, a live borrow of the row list would not.
pub(crate) fn split_pred<'a>(
    store: &'a dyn QuantStore,
    rows: &[u32],
    split: &crate::tree::SplitData,
) -> SplitPred<'a> {
    let f = split.feature as usize;
    let route = match store.as_single() {
        Some(qm) => {
            if let Some(col) = qm.dense_col(f) {
                SplitRoute::Dense(col)
            } else if qm.is_bundled() {
                let slot = qm.mapper().bundles().expect("bundle map").slot(f);
                let col = qm.bundled_col(slot.col as usize).expect("bundled storage");
                SplitRoute::Bundled { col, lo: slot.offset, width: slot.width }
            } else {
                SplitRoute::Sparse(qm)
            }
        }
        None => {
            let rows_owned = rows.to_vec();
            let mut bins = Vec::with_capacity(rows_owned.len());
            store.gather_route_bins(f, &rows_owned, &mut bins);
            SplitRoute::Gathered { rows: rows_owned, bins }
        }
    };
    SplitPred { f, bin: split.bin, default_left: split.default_left, route }
}

/// Builds the routing predicates for a whole frontier of splits at once.
/// In-core stores borrow their routing columns per split (O(1), exactly
/// [`split_pred`]); a chunked store gathers every node's routing bins in
/// ONE ascending sweep of the chunk sequence — per-node gathers would pin
/// the node's full chunk span once per split, which under a resident
/// budget reloads most of the cache for every split in the batch.
pub(crate) fn split_preds_batch<'a>(
    store: &'a dyn QuantStore,
    items: &[(&[u32], &crate::tree::SplitData)],
) -> Vec<SplitPred<'a>> {
    if store.as_single().is_some() {
        return items.iter().map(|&(rows, split)| split_pred(store, rows, split)).collect();
    }
    let rows_owned: Vec<Vec<u32>> = items.iter().map(|&(r, _)| r.to_vec()).collect();
    let mut bins: Vec<Vec<u8>> = items.iter().map(|&(r, _)| Vec::with_capacity(r.len())).collect();
    let mut pos = vec![0usize; items.len()];
    let mut local: Vec<u32> = Vec::new();
    loop {
        let mut c_min = usize::MAX;
        for (i, r) in rows_owned.iter().enumerate() {
            if let Some(&row) = r.get(pos[i]) {
                c_min = c_min.min(store.chunk_of_row(row as usize));
            }
        }
        if c_min == usize::MAX {
            break;
        }
        if c_min + 1 < store.n_chunks() {
            store.prefetch(c_min + 1);
        }
        let span = store.chunk_rows(c_min);
        let chunk = store.pin(c_min);
        for (i, r) in rows_owned.iter().enumerate() {
            let Some(&row) = r.get(pos[i]) else { continue };
            if row as usize >= span.end {
                continue;
            }
            let end = pos[i] + r[pos[i]..].partition_point(|&x| (x as usize) < span.end);
            local.clear();
            local.extend(r[pos[i]..end].iter().map(|&x| x - span.start as u32));
            chunk.gather_route_bins(items[i].1.feature as usize, &local, &mut bins[i]);
            pos[i] = end;
        }
    }
    items
        .iter()
        .zip(rows_owned.into_iter().zip(bins))
        .map(|(&(_, split), (rows, bins))| SplitPred {
            f: split.feature as usize,
            bin: split.bin,
            default_left: split.default_left,
            route: SplitRoute::Gathered { rows, bins },
        })
        .collect()
}

impl SplitPred<'_> {
    /// Whether `row` routes left. Every route resolves the row to its
    /// feature-local effective bin (or [`MISSING_BIN`] when absent), then
    /// applies one shared `b <= bin` / default-direction rule, so all four
    /// storage paths route identically. `pos` is the row's index within the
    /// split node's span (what [`RowPartition::apply_split`] passes); the
    /// gathered route resolves it positionally — a by-row binary search per
    /// routed row dominated out-of-core ApplySplit time.
    pub(crate) fn goes_left(&self, pos: usize, row: u32) -> bool {
        let b = match &self.route {
            SplitRoute::Dense(col) => col[row as usize],
            SplitRoute::Bundled { col, lo, width } => {
                // The stored bin encodes which member feature is present:
                // only values inside `f`'s slot window belong to it,
                // anything else means `f` is absent in this row.
                let b = u16::from(col[row as usize]);
                if b.wrapping_sub(*lo) < *width {
                    (b - lo) as u8
                } else {
                    MISSING_BIN
                }
            }
            SplitRoute::Sparse(qm) => {
                let (cols, bins) = qm.sparse_row(row as usize).expect("sparse storage");
                match cols.binary_search(&(self.f as u32)) {
                    Ok(i) => bins[i],
                    Err(_) => MISSING_BIN,
                }
            }
            SplitRoute::Gathered { rows, bins } => {
                debug_assert_eq!(rows[pos], row, "gathered route out of step with the span");
                bins[pos]
            }
        };
        if b == MISSING_BIN {
            self.default_left
        } else {
            b <= self.bin
        }
    }
}

#[cfg(test)]
mod tests;
