//! End-to-end engine tests: learning, mode equivalence, determinism,
//! growth-policy semantics.

use super::*;
use crate::params::{BlockConfig, GrowthMethod, LossKind, ParallelMode};
use harp_data::{DatasetKind, DenseMatrix, FeatureMatrix, SynthConfig};

fn dataset(kind: DatasetKind, scale: f64) -> Dataset {
    SynthConfig::new(kind, 17).with_scale(scale).generate()
}

fn base_params() -> TrainParams {
    TrainParams { n_trees: 8, tree_size: 4, n_threads: 4, gamma: 0.1, ..Default::default() }
}

fn train(data: &Dataset, params: TrainParams) -> TrainOutput {
    GbdtTrainer::new(params).unwrap().train(data)
}

/// Predictions of `model` on the dataset's own features.
fn preds(out: &TrainOutput, data: &Dataset) -> Vec<f32> {
    out.model.predict_raw(&data.features)
}

fn assert_same_preds(a: &[f32], b: &[f32], tol: f32, label: &str) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert!((a[i] - b[i]).abs() <= tol, "{label}: row {i} diverged: {} vs {}", a[i], b[i]);
    }
}

#[test]
fn training_learns_the_synthetic_task() {
    let data = dataset(DatasetKind::HiggsLike, 0.08);
    let (train_set, test_set) = data.split(0.25, 1);
    let params = TrainParams { n_trees: 20, ..base_params() };
    let out = train(&train_set, params);
    let p = out.model.predict(&test_set.features);
    let auc = harp_metrics::auc(&test_set.labels, &p);
    assert!(auc > 0.70, "test AUC too low: {auc}");
}

#[test]
fn more_trees_improve_train_fit() {
    let data = dataset(DatasetKind::Synset, 0.03);
    let few = train(&data, TrainParams { n_trees: 2, ..base_params() });
    let many = train(&data, TrainParams { n_trees: 20, ..base_params() });
    let loss_few = harp_metrics::log_loss(&data.labels, &few.model.predict(&data.features));
    let loss_many = harp_metrics::log_loss(&data.labels, &many.model.predict(&data.features));
    assert!(loss_many < loss_few, "training loss should decrease: {loss_few} -> {loss_many}");
}

#[test]
fn all_modes_learn_equally_well() {
    let data = dataset(DatasetKind::HiggsLike, 0.05);
    let mut aucs = Vec::new();
    for mode in [
        ParallelMode::DataParallel,
        ParallelMode::ModelParallel,
        ParallelMode::Sync,
        ParallelMode::Async,
    ] {
        let params = TrainParams { mode, k: 4, n_trees: 10, ..base_params() };
        let out = train(&data, params);
        let p = out.model.predict(&data.features);
        aucs.push((mode, harp_metrics::auc(&data.labels, &p)));
    }
    for &(mode, auc) in &aucs {
        assert!(auc > 0.75, "{mode:?}: train AUC {auc}");
    }
}

#[test]
fn dp_and_mp_build_identical_trees_single_thread() {
    // With one thread and no histogram subtraction, both modes accumulate
    // every cell in ascending row order => bitwise-identical histograms,
    // identical trees, identical predictions.
    let data = dataset(DatasetKind::AirlineLike, 0.01);
    let mk = |mode| TrainParams {
        mode,
        n_threads: 1,
        hist_subtraction: false,
        n_trees: 5,
        ..base_params()
    };
    let dp = train(&data, mk(ParallelMode::DataParallel));
    let mp = train(&data, mk(ParallelMode::ModelParallel));
    assert_same_preds(&preds(&dp, &data), &preds(&mp, &data), 0.0, "DP vs MP @ T1");
}

#[test]
fn modes_agree_multithreaded_within_tolerance() {
    let data = dataset(DatasetKind::HiggsLike, 0.04);
    let mk = |mode| TrainParams { mode, n_trees: 6, k: 4, ..base_params() };
    let dp = train(&data, mk(ParallelMode::DataParallel));
    let mp = train(&data, mk(ParallelMode::ModelParallel));
    let sync = train(&data, mk(ParallelMode::Sync));
    let p_dp = preds(&dp, &data);
    assert_same_preds(&p_dp, &preds(&mp, &data), 1e-3, "DP vs MP @ T4");
    assert_same_preds(&p_dp, &preds(&sync, &data), 1e-3, "DP vs SYNC @ T4");
}

#[test]
fn async_matches_dp_when_growth_is_gain_limited() {
    // With a gain threshold stopping growth before the leaf budget binds,
    // every positive-gain node is split in any order: ASYNC (loose TopK)
    // and DP (strict) must build the same set of leaves.
    let data = dataset(DatasetKind::AirlineLike, 0.01);
    let mk = |mode| TrainParams {
        mode,
        n_trees: 4,
        tree_size: 10,
        gamma: 2.0,
        hist_subtraction: false,
        k: 4,
        ..base_params()
    };
    let dp = train(&data, mk(ParallelMode::DataParallel));
    let asy = train(&data, mk(ParallelMode::Async));
    assert_same_preds(&preds(&dp, &data), &preds(&asy, &data), 1e-3, "DP vs ASYNC");
    let dp_leaves: Vec<u32> = dp.diagnostics.tree_shapes.iter().map(|s| s.n_leaves).collect();
    let asy_leaves: Vec<u32> = asy.diagnostics.tree_shapes.iter().map(|s| s.n_leaves).collect();
    assert_eq!(dp_leaves, asy_leaves);
}

#[test]
fn deterministic_training_is_bitwise_reproducible() {
    let data = dataset(DatasetKind::CriteoLike, 0.02);
    let params = TrainParams { n_trees: 5, deterministic: true, ..base_params() };
    let a = train(&data, params.clone());
    let b = train(&data, params);
    assert_eq!(
        a.model.to_json().unwrap(),
        b.model.to_json().unwrap(),
        "two identical runs must serialize identically"
    );
}

#[test]
fn topk_is_leafwise_generalization() {
    // K=1 leafwise vs K=8: same leaf budget; K=1 splits the single best
    // node each round. Both must respect the budget and learn.
    let data = dataset(DatasetKind::HiggsLike, 0.04);
    for k in [1usize, 4, 8, 32] {
        let params = TrainParams { k, n_trees: 4, tree_size: 5, gamma: 0.0, ..base_params() };
        let out = train(&data, params);
        for shape in &out.diagnostics.tree_shapes {
            assert!(shape.n_leaves <= 32, "K={k}: leaf budget violated: {}", shape.n_leaves);
        }
        let auc = harp_metrics::auc(&data.labels, &out.model.predict(&data.features));
        assert!(auc > 0.7, "K={k}: AUC {auc}");
    }
}

#[test]
fn depthwise_respects_depth_limit() {
    let data = dataset(DatasetKind::Synset, 0.03);
    let params = TrainParams {
        growth: GrowthMethod::Depthwise,
        k: 0,
        tree_size: 3,
        gamma: 0.0,
        n_trees: 3,
        ..base_params()
    };
    let out = train(&data, params);
    for shape in &out.diagnostics.tree_shapes {
        assert!(shape.max_depth <= 3, "depth limit violated: {}", shape.max_depth);
        assert!(shape.n_leaves <= 8);
    }
}

#[test]
fn depthwise_topk_builds_the_same_tree_as_full_depthwise() {
    // §IV-B: depthwise with finite K selects level subsets but "the same
    // tree would be built".
    let data = dataset(DatasetKind::AirlineLike, 0.008);
    let mk = |k| TrainParams {
        growth: GrowthMethod::Depthwise,
        k,
        tree_size: 4,
        n_trees: 4,
        hist_subtraction: false,
        n_threads: 2,
        ..base_params()
    };
    let full = train(&data, mk(0));
    let topk = train(&data, mk(2));
    assert_same_preds(&preds(&full, &data), &preds(&topk, &data), 1e-4, "depthwise K");
}

#[test]
fn leafwise_can_exceed_depthwise_depth() {
    let data = dataset(DatasetKind::CriteoLike, 0.04);
    let params = TrainParams {
        growth: GrowthMethod::Leafwise,
        k: 1,
        tree_size: 5, // 32 leaves
        gamma: 0.0,
        n_trees: 2,
        ..base_params()
    };
    let out = train(&data, params);
    // The response-correlated feature drives repeated splits down one
    // branch: depth must exceed log2(leaves) on this dataset.
    let max_depth = out.diagnostics.tree_shapes.iter().map(|s| s.max_depth).max().unwrap();
    assert!(max_depth > 5, "leafwise tree unexpectedly balanced: depth {max_depth}");
}

#[test]
fn membuf_toggle_does_not_change_results() {
    let data = dataset(DatasetKind::HiggsLike, 0.03);
    let on = train(&data, TrainParams { use_membuf: true, n_trees: 5, ..base_params() });
    let off = train(&data, TrainParams { use_membuf: false, n_trees: 5, ..base_params() });
    assert_same_preds(&preds(&on, &data), &preds(&off, &data), 0.0, "MemBuf toggle");
}

#[test]
fn subtraction_toggle_preserves_quality() {
    let data = dataset(DatasetKind::HiggsLike, 0.04);
    let on = train(&data, TrainParams { hist_subtraction: true, n_trees: 8, ..base_params() });
    let off = train(&data, TrainParams { hist_subtraction: false, n_trees: 8, ..base_params() });
    let auc_on = harp_metrics::auc(&data.labels, &on.model.predict(&data.features));
    let auc_off = harp_metrics::auc(&data.labels, &off.model.predict(&data.features));
    assert!((auc_on - auc_off).abs() < 0.02, "subtraction changed quality: {auc_on} vs {auc_off}");
}

#[test]
fn block_configurations_do_not_change_learning() {
    let data = dataset(DatasetKind::AirlineLike, 0.01);
    let reference = train(
        &data,
        TrainParams { n_trees: 4, hist_subtraction: false, n_threads: 1, ..base_params() },
    );
    let p_ref = preds(&reference, &data);
    for (row, node, feat, bin) in [(64, 2, 2, 16), (0, 4, 1, 0), (100, 0, 3, 64)] {
        let params = TrainParams {
            n_trees: 4,
            hist_subtraction: false,
            n_threads: 1,
            blocks: BlockConfig {
                row_blk_size: row,
                node_blk_size: node,
                feature_blk_size: feat,
                bin_blk_size: bin,
            },
            ..base_params()
        };
        for mode in [ParallelMode::DataParallel, ParallelMode::ModelParallel] {
            let out = train(&data, TrainParams { mode, ..params.clone() });
            assert_same_preds(&p_ref, &preds(&out, &data), 0.0, "block config @ T1");
        }
    }
}

#[test]
fn sparse_dataset_trains_in_all_modes() {
    let data = dataset(DatasetKind::YfccLike, 0.05);
    for mode in [ParallelMode::DataParallel, ParallelMode::ModelParallel, ParallelMode::Async] {
        let params = TrainParams { mode, n_trees: 4, tree_size: 3, ..base_params() };
        let out = train(&data, params);
        let auc = harp_metrics::auc(&data.labels, &out.model.predict(&data.features));
        assert!(auc > 0.6, "{mode:?} on sparse data: AUC {auc}");
    }
}

#[test]
fn squared_error_regression_reduces_rmse() {
    // Regression on a noiseless linear target.
    let n = 500;
    let values: Vec<f32> = (0..n * 2).map(|i| ((i * 37) % 100) as f32 / 100.0).collect();
    let labels: Vec<f32> = (0..n).map(|r| values[r * 2] * 3.0 - values[r * 2 + 1]).collect();
    let data =
        Dataset::new("reg", FeatureMatrix::Dense(DenseMatrix::from_vec(n, 2, values)), labels);
    let params = TrainParams {
        loss: LossKind::SquaredError,
        n_trees: 30,
        tree_size: 4,
        gamma: 0.0,
        ..base_params()
    };
    let out = train(&data, params);
    let p = out.model.predict(&data.features);
    let rmse = harp_metrics::rmse(&data.labels, &p);
    assert!(rmse < 0.4, "regression rmse too high: {rmse}");
}

#[test]
fn eval_trace_and_early_stopping() {
    let data = dataset(DatasetKind::HiggsLike, 0.05);
    let (train_set, valid) = data.split(0.3, 2);
    let params = TrainParams { n_trees: 30, ..base_params() };
    let out = GbdtTrainer::new(params).unwrap().train_with_eval(
        &train_set,
        Some(EvalOptions {
            data: &valid,
            metric: EvalMetric::Auc,
            every: 1,
            early_stopping_rounds: Some(3),
        }),
    );
    let trace = out.diagnostics.trace.as_ref().expect("trace recorded");
    assert!(!trace.points().is_empty());
    assert!(out.diagnostics.best_iteration.is_some());
    // Points are per-iteration and non-decreasing in time.
    let pts = trace.points();
    for w in pts.windows(2) {
        assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
    }
    // If early stopping fired, fewer trees than requested were built.
    if out.model.n_trees() < 30 {
        let best = out.diagnostics.best_iteration.unwrap();
        assert!(out.model.n_trees() >= best);
    }
}

#[test]
fn diagnostics_report_phases_and_profile() {
    let data = dataset(DatasetKind::HiggsLike, 0.03);
    let out = train(&data, TrainParams { n_trees: 3, ..base_params() });
    let d = &out.diagnostics;
    assert_eq!(d.per_tree_secs.len(), 3);
    assert!(d.train_secs > 0.0);
    assert!(d.breakdown.build_hist_secs > 0.0, "BuildHist must be attributed");
    assert!(d.breakdown.find_split_secs > 0.0);
    assert!(d.profile.regions > 0, "fork/join regions must be counted");
    assert!(d.profile.tasks > 0);
    assert!(d.profile.bytes_read > 0);
    assert!(d.mean_tree_secs() > 0.0);
}

#[test]
fn constant_labels_yield_stump_free_trees() {
    let n = 64;
    let values: Vec<f32> = (0..n * 2).map(|i| (i % 7) as f32).collect();
    let data = Dataset::new(
        "const",
        FeatureMatrix::Dense(DenseMatrix::from_vec(n, 2, values)),
        vec![1.0; n],
    );
    let out = train(&data, base_params());
    // No gain anywhere: every tree is a bare root.
    for shape in &out.diagnostics.tree_shapes {
        assert_eq!(shape.n_leaves, 1);
    }
    // And predictions sit at the (clamped) base-rate log odds.
    let p = out.model.predict(&data.features)[0];
    assert!(p > 0.95);
}

#[test]
fn tiny_dataset_does_not_panic() {
    let data = Dataset::new(
        "tiny",
        FeatureMatrix::Dense(DenseMatrix::from_vec(2, 1, vec![0.0, 1.0])),
        vec![0.0, 1.0],
    );
    for mode in [ParallelMode::DataParallel, ParallelMode::Async] {
        let params = TrainParams {
            mode,
            n_trees: 2,
            tree_size: 2,
            min_child_weight: 0.0,
            gamma: 0.0,
            ..base_params()
        };
        let out = train(&data, params);
        assert_eq!(out.model.n_trees(), 2);
    }
}

#[test]
fn threads_do_not_change_learning_quality() {
    let data = dataset(DatasetKind::Synset, 0.02);
    let mut aucs = Vec::new();
    for t in [1usize, 2, 8] {
        let params = TrainParams { n_threads: t, n_trees: 6, ..base_params() };
        let out = train(&data, params);
        aucs.push(harp_metrics::auc(&data.labels, &out.model.predict(&data.features)));
    }
    for w in aucs.windows(2) {
        assert!((w[0] - w[1]).abs() < 0.02, "thread count changed quality: {aucs:?}");
    }
}

#[test]
fn multiclass_softmax_learns_three_classes() {
    // 3-class task: class determined by which third of feature-0 the row
    // falls into, plus a second noisy feature.
    let n = 600;
    let mut values = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let x = (i % 100) as f32 / 100.0;
        let noise = ((i * 7919) % 97) as f32 / 97.0;
        values.push(x);
        values.push(noise);
        labels.push(if x < 0.33 {
            0.0
        } else if x < 0.66 {
            1.0
        } else {
            2.0
        });
    }
    let data =
        Dataset::new("mc", FeatureMatrix::Dense(DenseMatrix::from_vec(n, 2, values)), labels);
    let params = TrainParams {
        loss: LossKind::Softmax { n_classes: 3 },
        n_trees: 15,
        tree_size: 3,
        gamma: 0.0,
        ..base_params()
    };
    let out = train(&data, params);
    assert_eq!(out.model.n_trees(), 45, "one tree per class per round");
    assert_eq!(out.model.n_groups(), 3);
    let err =
        harp_metrics::multiclass_error(&data.labels, &out.model.predict_raw(&data.features), 3);
    assert!(err < 0.05, "multiclass error {err}");
    // Probabilities normalize per row.
    let probs = out.model.predict(&data.features);
    for row in probs.chunks_exact(3).take(10) {
        let s: f32 = row.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }
    // predict_class agrees with argmax of raw scores.
    let classes = out.model.predict_class(&data.features);
    assert_eq!(classes.len(), n);
    let wrong = classes.iter().zip(&data.labels).filter(|(&c, &y)| c != y as u32).count();
    assert!((wrong as f64 / n as f64 - err).abs() < 1e-9);
}

#[test]
fn multiclass_eval_and_early_stopping() {
    let n = 300;
    let values: Vec<f32> = (0..n).map(|i| (i % 50) as f32 / 50.0).collect();
    let labels: Vec<f32> = (0..n).map(|i| ((i % 50) / 17).min(2) as f32).collect();
    let data =
        Dataset::new("mc-eval", FeatureMatrix::Dense(DenseMatrix::from_vec(n, 1, values)), labels);
    let (train_set, valid) = data.split(0.3, 1);
    let params = TrainParams {
        loss: LossKind::Softmax { n_classes: 3 },
        n_trees: 20,
        tree_size: 3,
        gamma: 0.0,
        ..base_params()
    };
    let out = GbdtTrainer::new(params).unwrap().train_with_eval(
        &train_set,
        Some(EvalOptions {
            data: &valid,
            metric: EvalMetric::MulticlassLogLoss,
            every: 1,
            early_stopping_rounds: Some(4),
        }),
    );
    let trace = out.diagnostics.trace.as_ref().expect("trace");
    let first = trace.points().first().unwrap().metric;
    let best = trace.best().unwrap();
    assert!(best < first, "multiclass log-loss should improve: {first} -> {best}");
}

#[test]
fn subsampling_still_learns_and_differs_from_full() {
    let data = dataset(DatasetKind::HiggsLike, 0.05);
    let full = train(&data, TrainParams { n_trees: 10, ..base_params() });
    let sub = train(&data, TrainParams { n_trees: 10, subsample: 0.5, seed: 3, ..base_params() });
    let auc_full = harp_metrics::auc(&data.labels, &full.model.predict(&data.features));
    let auc_sub = harp_metrics::auc(&data.labels, &sub.model.predict(&data.features));
    assert!(auc_sub > 0.7, "subsampled model should still learn: {auc_sub}");
    assert!((auc_full - auc_sub).abs() < 0.1);
    assert_ne!(
        full.model.predict_raw(&data.features),
        sub.model.predict_raw(&data.features),
        "subsampling must change the model"
    );
}

#[test]
fn colsample_restricts_split_features() {
    let data = dataset(DatasetKind::Synset, 0.03);
    let out = train(
        &data,
        TrainParams { n_trees: 6, colsample_bytree: 0.2, seed: 5, gamma: 0.0, ..base_params() },
    );
    // Different trees should use different feature subsets: the union of
    // split features over 6 trees should exceed one tree's 20% budget but
    // the model must still train.
    let imp = out.model.feature_importance();
    let used = imp.iter().filter(|i| i.splits > 0).count();
    assert!(used > 0);
    let auc = harp_metrics::auc(&data.labels, &out.model.predict(&data.features));
    assert!(auc > 0.65, "colsampled model should still learn: {auc}");
}

#[test]
fn sample_weights_shift_the_decision_boundary() {
    let data = dataset(DatasetKind::HiggsLike, 0.05);
    let qm = harp_binning::QuantizedMatrix::from_matrix(
        &data.features,
        harp_binning::BinningConfig::default(),
    );
    // Upweight positives 10x: mean predicted probability must rise.
    let weights: Vec<f32> = data.labels.iter().map(|&y| if y > 0.5 { 10.0 } else { 1.0 }).collect();
    let params = TrainParams { n_trees: 8, ..base_params() };
    let plain = GbdtTrainer::new(params.clone())
        .unwrap()
        .train_prepared(&qm, &data.labels, None);
    let weighted = GbdtTrainer::new(params).unwrap().train_prepared_weighted(
        &qm,
        &data.labels,
        Some(&weights),
        None,
    );
    let mean = |out: &TrainOutput| {
        let p = out.model.predict(&data.features);
        p.iter().sum::<f32>() / p.len() as f32
    };
    let (mp, mw) = (mean(&plain), mean(&weighted));
    assert!(mw > mp + 0.05, "upweighting positives should raise mean probability: {mp} -> {mw}");
}

#[test]
fn predict_leaf_and_dump_text_work() {
    let data = dataset(DatasetKind::AirlineLike, 0.005);
    let out = train(&data, TrainParams { n_trees: 3, ..base_params() });
    let leaves = out.model.predict_leaf_row(|f| data.features.get(0, f as usize));
    assert_eq!(leaves.len(), 3);
    for (t, &leaf) in leaves.iter().enumerate() {
        assert!(out.model.trees()[t].node(leaf).is_leaf());
    }
    let dump = out.model.dump_text();
    assert!(dump.contains("tree 0"));
    assert!(dump.contains("leaf="));
}

#[test]
fn multiclass_model_json_roundtrip() {
    let n = 90;
    let values: Vec<f32> = (0..n).map(|i| (i % 30) as f32).collect();
    let labels: Vec<f32> = (0..n).map(|i| ((i % 30) / 10) as f32).collect();
    let data =
        Dataset::new("mc-json", FeatureMatrix::Dense(DenseMatrix::from_vec(n, 1, values)), labels);
    let params = TrainParams {
        loss: LossKind::Softmax { n_classes: 3 },
        n_trees: 4,
        tree_size: 2,
        gamma: 0.0,
        ..base_params()
    };
    let out = train(&data, params);
    let back = crate::GbdtModel::from_json(&out.model.to_json().unwrap()).unwrap();
    assert_eq!(back.n_groups(), 3);
    assert_eq!(out.model.predict_raw(&data.features), back.predict_raw(&data.features));
    // Truncation keeps whole rounds.
    let t1 = out.model.truncated(2);
    assert_eq!(t1.n_trees(), 6);
}
