//! ASYNC mode: barrier-free node-level parallelism (§IV-C, §IV-D).
//!
//! "ASYNC schedules all the computation involved within one tree node as a
//! single task in the intermediate phase …​ in this way, it avoids all the
//! for-loops barrier wait overhead." Workers pop the most promising
//! candidate from a shared spin-locked priority queue, split it, build the
//! children's histograms *serially inside the task*, and push the children
//! back — the loosely-coupled TopK: each of the K threads grabs the best
//! candidate it can see, with no global synchronization after every K
//! splits.
//!
//! Shared state and its guards:
//! * the tree — [`SpinMutex`], touched twice per task for microseconds;
//! * the histogram pool — [`SpinMutex`], alloc/release/cache;
//! * the leaf budget — a CAS loop on an atomic counter;
//! * row partition — no lock: each task owns its node's span.

use super::{split_pred, TreeEngine};
use crate::growth::{GrowthQueue, RankedCandidate};
use crate::hist;
use crate::kernels::{row_scan_store, GradSource, BYTES_PER_CELL, FLOPS_PER_CELL};
use crate::loss::GradPair;
use crate::params::GrowthMethod;
use crate::split::find_split_masked;
use crate::tree::{NodeId, NodeStats, Tree};
use harp_parallel::{PhaseSpan, SpinMutex, TracePhase, WorkQueue};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Runs the queue-driven phase until the growth frontier is exhausted or the
/// leaf budget is spent. `queue`'s current candidates seed the shared work
/// queue; `tree` and `leaves` are updated in place.
pub(super) fn run_async(
    engine: &mut TreeEngine<'_>,
    grads: &[GradPair],
    tree: &mut Tree,
    queue: &mut GrowthQueue,
    leaves: &mut usize,
) {
    let max_leaves = engine.params.max_leaves();
    if *leaves >= max_leaves || queue.is_empty() {
        return;
    }
    // "K threads select the top candidate as best as they can": node-level
    // concurrency is bounded by K tasks in flight.
    let trace = engine.pool.trace().map(|s| s.as_ref());
    let wq: WorkQueue<RankedCandidate> = WorkQueue::bounded(engine.params.effective_k());
    let seed = queue.pop_batch(usize::MAX, usize::MAX);
    if let Some(sink) = trace {
        for _ in 0..seed.len() {
            sink.count_queue_push(sink.coordinator_lane());
        }
    }
    wq.push_all(seed);

    let depthwise = engine.params.growth == GrowthMethod::Depthwise;
    let use_scalar = engine.params.use_scalar_kernels;
    let max_depth = engine.max_depth_limit();
    let subtraction = engine.params.hist_subtraction;
    let qm = engine.qm;
    let m = qm.n_features();
    // Each ASYNC node task is the degenerate ⟨one node, all rows⟩ plan task,
    // executed inline — there is nothing to enumerate. An explicit
    // `feature_blk_size` still slices the scan into plan feature blocks:
    // blocks write disjoint histogram lanes in the same per-lane row order,
    // so the result is bitwise-identical while trading grad re-reads for
    // write locality exactly as in the DP executor. Sparse rows have no
    // per-block substructure and Auto resolves per DP batch, not per node;
    // both scan whole.
    let f_blk = if qm.layout().dense && !engine.params.blocks.is_auto() {
        engine.params.blocks.features_per_block(m)
    } else {
        m
    };
    let mapper = qm.mapper();
    let partition = &engine.partition;
    let settings = engine.settings;
    // Owned copy: `engine.hist_pool` is mutably borrowed below, so the mask
    // cannot stay borrowed from `engine`.
    let mask_owned: Option<Vec<bool>> = engine.mask().map(<[bool]>::to_vec);
    let mask = mask_owned.as_deref();
    let breakdown = engine.breakdown;
    let profile = engine.pool.profile();
    let lock_wait = &profile.lock_wait_ns;

    let tree_lock = SpinMutex::new(std::mem::replace(tree, Tree::new_root(NodeStats::default())));
    let hist_lock = SpinMutex::new(&mut engine.hist_pool);
    let leaves_ctr = AtomicUsize::new(*leaves);
    // Sequence numbers continue past the batch engine's; exact values only
    // break gain ties.
    let seq = AtomicU64::new(1 << 32);
    let cells_total = AtomicU64::new(0);

    engine.pool.run_queue(&wq, |cand, wq, worker| {
        // Claim one unit of leaf budget; failing means the tree is full and
        // this candidate simply remains a leaf.
        loop {
            let cur = leaves_ctr.load(Ordering::Relaxed);
            if cur >= max_leaves {
                return;
            }
            if leaves_ctr
                .compare_exchange(cur, cur + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }

        // Tree update (short critical section).
        let (l, r, child_depth) = {
            let _phase = PhaseSpan::begin(
                trace,
                worker,
                TracePhase::ApplySplit,
                cand.node,
                0,
                Some(&breakdown.apply_split_ns),
            );
            let mut t = tree_lock.lock_timed(lock_wait);
            let (l, r) = t.apply_split(cand.node, cand.cand.split, cand.cand.left, cand.cand.right);
            (l, r, t.node(l).depth)
        };

        // Partition this node's span (exclusive ownership, no lock).
        let (ln, rn) = {
            let _phase = PhaseSpan::begin(
                trace,
                worker,
                TracePhase::ApplySplit,
                cand.node,
                1,
                Some(&breakdown.apply_split_ns),
            );
            let pred = split_pred(qm, partition.rows(cand.node), &cand.cand.split);
            partition.apply_split(cand.node, l, r, &|pos, row| pred.goes_left(pos, row), None)
        };
        {
            let mut t = tree_lock.lock_timed(lock_wait);
            t.node_mut(l).stats.count = ln;
            t.node_mut(r).stats.count = rn;
        }

        let eligible = |count: u32| child_depth < max_depth && count >= 2;
        let l_el = eligible(ln);
        let r_el = eligible(rn);
        let parent_buf = hist_lock.lock_timed(lock_wait).cache_take(cand.node);

        // Build children histograms serially within this task.
        let mut built: Vec<(NodeId, Vec<f64>)> = Vec::with_capacity(2);
        {
            let _phase = PhaseSpan::begin(
                trace,
                worker,
                TracePhase::BuildHist,
                cand.node,
                0,
                Some(&breakdown.build_hist_ns),
            );
            let mut cells = 0u64;
            let mut fresh = |node: NodeId| -> Vec<f64> {
                let mut buf = hist_lock.lock_timed(lock_wait).alloc();
                let rows = partition.rows(node);
                let src = GradSource::select(partition.grads(node), grads);
                for f_range in crate::plan::feature_blocks(m, f_blk) {
                    cells += row_scan_store(qm, rows, src, f_range, &mut buf, use_scalar);
                }
                buf
            };
            match (l_el, r_el, parent_buf) {
                (true, true, Some(mut pbuf)) if subtraction => {
                    let (small, large) = if ln <= rn { (l, r) } else { (r, l) };
                    let small_buf = fresh(small);
                    hist::subtract_in_place(&mut pbuf, &small_buf);
                    built.push((small, small_buf));
                    built.push((large, pbuf));
                }
                (l_el, r_el, parent_buf) => {
                    if let Some(pbuf) = parent_buf {
                        hist_lock.lock_timed(lock_wait).release(pbuf);
                    }
                    if l_el {
                        built.push((l, fresh(l)));
                    }
                    if r_el {
                        built.push((r, fresh(r)));
                    }
                }
            }
            cells_total.fetch_add(cells, Ordering::Relaxed);
        }

        // FindSplit serially, then push the children as new tasks.
        let _phase = PhaseSpan::begin(
            trace,
            worker,
            TracePhase::FindSplit,
            cand.node,
            0,
            Some(&breakdown.find_split_ns),
        );
        for (node, buf) in built {
            let stats = tree_lock.lock_timed(lock_wait).node(node).stats;
            match find_split_masked(&buf, &stats, mapper, 0..m, &settings, mask) {
                Some(c) => {
                    hist_lock.lock_timed(lock_wait).cache_insert(node, buf, c.split.gain);
                    if let Some(sink) = trace {
                        sink.count_queue_push(worker);
                    }
                    wq.push(RankedCandidate::for_async(
                        node,
                        child_depth,
                        c,
                        seq.fetch_add(1, Ordering::Relaxed),
                        depthwise,
                    ));
                }
                None => hist_lock.lock_timed(lock_wait).release(buf),
            }
        }
    });

    let cells = cells_total.load(Ordering::Relaxed);
    profile.add_bytes(cells * (BYTES_PER_CELL - 16), cells * 16, cells * FLOPS_PER_CELL);
    *leaves = leaves_ctr.load(Ordering::Relaxed);
    *tree = tree_lock.into_inner();
}
