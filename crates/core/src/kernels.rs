//! BuildHist scan kernels (Algorithm 2).
//!
//! Two access patterns, matching the two parallelism families of §II-B:
//!
//! * [`row_scan`] — walk a set of rows, accumulating every feature in a
//!   feature block: the data-parallel kernel (writes span the whole feature
//!   block of one node — a private replica or an exclusively owned buffer).
//! * [`col_scan`] — walk one feature column restricted to a node's rows:
//!   the model-parallel kernel (writes confined to that feature's bins of
//!   that node — a `16 × bin_blk × feature_blk × node_blk` region, §IV-E).
//!
//! Both are monomorphized over [`GradRead`] (MemBuf slice vs. global
//! gather, the "+MemBuf" ablation of Table V) so the per-cell gradient
//! dispatch disappears, and both index the mapper's flattened
//! [`harp_binning::BinMapper::bin_offsets`] table directly. The dense row
//! scan additionally unrolls four rows per step with software prefetch and
//! routes `MISSING_BIN` cells branch-free into per-feature *sink cells*
//! appended past the real histogram (see [`row_scan`] for the layout
//! contract); the sinks are zeroed before the buffer leaves the kernel, so
//! output is bitwise identical to the retained scalar reference
//! ([`row_scan_scalar`] / [`col_scan_scalar`]).
//!
//! All kernels return the number of histogram accumulations performed so
//! drivers can report byte traffic and FLOPs to the profiler.

use crate::loss::GradPair;
use harp_binning::{QuantizedMatrix, MISSING_BIN};
use std::ops::Range;

/// Gradient source for a node scan: MemBuf slice or global gather.
#[derive(Clone, Copy)]
pub enum GradSource<'a> {
    /// Node-aligned `(g, h)` replica; index = position within the node.
    MemBuf(&'a [GradPair]),
    /// Global array indexed by row id (random access).
    Global(&'a [GradPair]),
}

impl<'a> GradSource<'a> {
    /// Picks MemBuf when the slice is non-empty, else the global array.
    pub fn select(membuf: &'a [GradPair], global: &'a [GradPair]) -> Self {
        if membuf.is_empty() {
            GradSource::Global(global)
        } else {
            GradSource::MemBuf(membuf)
        }
    }

    #[inline]
    fn get(&self, pos_in_node: usize, row: u32) -> GradPair {
        match self {
            GradSource::MemBuf(m) => m[pos_in_node],
            GradSource::Global(g) => g[row as usize],
        }
    }
}

/// Monomorphized gradient access: implementations resolve either by scan
/// position (MemBuf) or by row id (global gather) with no per-cell branch.
trait GradRead: Copy {
    /// The `(g, h)` pair of the `i`-th scanned row, whose row id is `row`.
    fn get(&self, i: usize, row: u32) -> GradPair;
    /// Hints the upcoming access; no-op where the walk is sequential.
    fn prefetch(&self, i: usize, row: u32);
}

#[derive(Clone, Copy)]
struct MemBufRead<'a>(&'a [GradPair]);

impl GradRead for MemBufRead<'_> {
    #[inline(always)]
    fn get(&self, i: usize, _row: u32) -> GradPair {
        self.0[i]
    }

    #[inline(always)]
    fn prefetch(&self, _i: usize, _row: u32) {
        // Sequential walk; the hardware prefetcher covers it.
    }
}

#[derive(Clone, Copy)]
struct GlobalRead<'a>(&'a [GradPair]);

impl GradRead for GlobalRead<'_> {
    #[inline(always)]
    fn get(&self, _i: usize, row: u32) -> GradPair {
        self.0[row as usize]
    }

    #[inline(always)]
    fn prefetch(&self, _i: usize, row: u32) {
        if let Some(p) = self.0.get(row as usize) {
            prefetch_read(std::ptr::from_ref(p));
        }
    }
}

/// Monomorphized row-id access: an explicit id slice or a contiguous range
/// (the root fast path, where the id is the scan position itself).
trait RowSet: Copy {
    fn len(&self) -> usize;
    fn get(&self, i: usize) -> u32;
}

#[derive(Clone, Copy)]
struct SliceRows<'a>(&'a [u32]);

impl RowSet for SliceRows<'_> {
    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        self.0[i]
    }
}

#[derive(Clone, Copy)]
struct ContigRows {
    base: u32,
    len: usize,
}

impl RowSet for ContigRows {
    #[inline(always)]
    fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        self.base + i as u32
    }
}

/// How many rows ahead the dense scan prefetches bin rows and gathered
/// gradients (two unrolled quads).
pub const PREFETCH_ROWS: usize = 8;

/// Software prefetch into all cache levels; portable no-op off x86-64.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, even on bad addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Lanes a row-scan histogram buffer must have beyond the real cells: one
/// `(Σg, Σh)` sink cell per feature, appended after `total_bins`.
pub fn sink_lanes(n_features: usize) -> usize {
    n_features * 2
}

/// Accumulates `rows` × features `f_range` into `hist` (one node's full
/// buffer, indexed by the mapper's bin offsets). Returns the accumulation
/// count (missing cells excluded).
///
/// # Layout contract
/// For dense storage, `hist` must be the *padded* layout of
/// [`crate::hist::hist_width`]: `total_bins * 2` real lanes followed by
/// [`sink_lanes`] zeroed sink lanes. Missing cells accumulate branch-free
/// into feature `f`'s sink cell at index `total_bins + f` and the kernel
/// re-zeroes the sinks of `f_range` before returning, so the buffer's real
/// cells — and the sinks — leave exactly as the scalar reference
/// ([`row_scan_scalar`]) produces them. Sparse storage has no missing
/// sentinel and needs no padding.
pub fn row_scan(
    qm: &QuantizedMatrix,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    match grads {
        GradSource::MemBuf(m) => {
            assert!(m.len() >= rows.len(), "MemBuf shorter than the row set");
            row_scan_impl(qm, SliceRows(rows), MemBufRead(m), f_range, hist)
        }
        GradSource::Global(g) => row_scan_impl(qm, SliceRows(rows), GlobalRead(g), f_range, hist),
    }
}

/// [`row_scan`] over the contiguous rows `row_range` — the root fast path,
/// where the row set is `0..n` (or any span of it) and the MemBuf position
/// equals the row id, so the row-id indirection drops out entirely.
///
/// A `GradSource::MemBuf` slice must be aligned to `row_range` (entry `i`
/// belongs to row `row_range.start + i`), which at the root it is.
pub fn row_scan_root(
    qm: &QuantizedMatrix,
    row_range: Range<usize>,
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    assert!(row_range.end <= qm.n_rows(), "row range out of bounds");
    let rows = ContigRows { base: row_range.start as u32, len: row_range.len() };
    match grads {
        GradSource::MemBuf(m) => {
            assert!(m.len() >= rows.len, "MemBuf shorter than the row range");
            row_scan_impl(qm, rows, MemBufRead(m), f_range, hist)
        }
        GradSource::Global(g) => row_scan_impl(qm, rows, GlobalRead(g), f_range, hist),
    }
}

fn row_scan_impl<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let m = qm.n_features();
    assert!(f_range.end <= m, "feature range out of bounds");
    match qm.dense_row_major() {
        Some(row_major) => dense_row_scan(qm, row_major, rows, grads, f_range, hist),
        None => sparse_row_scan(qm, rows, grads, f_range, hist),
    }
}

/// The specialized dense body: 4-row unroll, feature-outer within each quad
/// (same-cell accumulation order stays row-ascending, as in the scalar
/// scan), software prefetch [`PREFETCH_ROWS`] ahead, and branch-free
/// missing-bin routing into the per-feature sinks.
fn dense_row_scan<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    row_major: &[u8],
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let m = qm.n_features();
    let offsets = qm.mapper().bin_offsets();
    let total = qm.mapper().total_bins();
    assert!(
        hist.len() >= total as usize * 2 + sink_lanes(m),
        "dense row_scan needs the padded hist layout (total_bins*2 + sink lanes)"
    );
    let n = rows.len();
    let hp = hist.as_mut_ptr();

    // Per-cell safety: a stored bin is < n_bins(f) or MISSING_BIN (the
    // QuantizedMatrix invariant), so the selected index is either
    // offsets[f] + b < offsets[f+1] <= total or the sink total + f < total
    // + m; both fit the padded buffer asserted above.
    #[inline(always)]
    unsafe fn acc(hp: *mut f64, off: u32, sink: u32, b: u8, g: f32, h: f32) -> u64 {
        let miss = u32::from(b == MISSING_BIN);
        let mask = miss.wrapping_neg();
        let cell = (((off + u32::from(b)) & !mask) | (sink & mask)) as usize * 2;
        unsafe {
            *hp.add(cell) += f64::from(g);
            *hp.add(cell + 1) += f64::from(h);
        }
        u64::from(1 - miss)
    }

    let row_bins = |row: u32| -> &[u8] { &row_major[row as usize * m..row as usize * m + m] };
    let mut cells = 0u64;
    let mut i = 0usize;
    while i + 4 <= n {
        if i + PREFETCH_ROWS + 4 <= n {
            for d in 0..4 {
                let r = rows.get(i + PREFETCH_ROWS + d);
                prefetch_read(&row_major[r as usize * m + f_range.start]);
                grads.prefetch(i + PREFETCH_ROWS + d, r);
            }
        }
        let (r0, r1, r2, r3) = (rows.get(i), rows.get(i + 1), rows.get(i + 2), rows.get(i + 3));
        let ([g0, h0], [g1, h1]) = (grads.get(i, r0), grads.get(i + 1, r1));
        let ([g2, h2], [g3, h3]) = (grads.get(i + 2, r2), grads.get(i + 3, r3));
        let (b0, b1, b2, b3) = (row_bins(r0), row_bins(r1), row_bins(r2), row_bins(r3));
        for f in f_range.clone() {
            // SAFETY: f < f_range.end <= m bounds every slice; cell indices
            // per the invariant above.
            unsafe {
                let off = *offsets.get_unchecked(f);
                let sink = total + f as u32;
                cells += acc(hp, off, sink, *b0.get_unchecked(f), g0, h0);
                cells += acc(hp, off, sink, *b1.get_unchecked(f), g1, h1);
                cells += acc(hp, off, sink, *b2.get_unchecked(f), g2, h2);
                cells += acc(hp, off, sink, *b3.get_unchecked(f), g3, h3);
            }
        }
        i += 4;
    }
    while i < n {
        let r = rows.get(i);
        let [g, h] = grads.get(i, r);
        let bins = row_bins(r);
        for f in f_range.clone() {
            // SAFETY: as in the unrolled body.
            unsafe {
                let off = *offsets.get_unchecked(f);
                cells += acc(hp, off, total + f as u32, *bins.get_unchecked(f), g, h);
            }
        }
        i += 1;
    }
    // Strip the sinks: missing mass never leaves the kernel, keeping the
    // buffer bitwise identical to the scalar reference.
    for f in f_range {
        hist[(total as usize + f) * 2] = 0.0;
        hist[(total as usize + f) * 2 + 1] = 0.0;
    }
    cells
}

fn sparse_row_scan<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let offsets = qm.mapper().bin_offsets();
    let full = f_range.start == 0 && f_range.end == qm.n_features();
    let mut cells = 0u64;
    for i in 0..rows.len() {
        let row = rows.get(i);
        let [g, h] = grads.get(i, row);
        let (cols, bins) = qm.sparse_row(row as usize).expect("sparse storage");
        // Restrict to the feature block; row entries are sorted by column.
        let (lo, hi) = if full {
            (0, cols.len())
        } else {
            (
                cols.partition_point(|&c| (c as usize) < f_range.start),
                cols.partition_point(|&c| (c as usize) < f_range.end),
            )
        };
        for k in lo..hi {
            let cell = (offsets[cols[k] as usize] + u32::from(bins[k])) as usize * 2;
            hist[cell] += f64::from(g);
            hist[cell + 1] += f64::from(h);
        }
        cells += (hi - lo) as u64;
    }
    cells
}

/// The scalar row-scan reference: one `match` per gradient read, one
/// `bin_offset` call and one missing-bin branch per cell. Retained verbatim
/// so the specialized kernels have a bitwise ground truth (and the bench
/// runner a "before" measurement). Needs no sink padding.
pub fn row_scan_scalar(
    qm: &QuantizedMatrix,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let mapper = qm.mapper();
    let mut cells = 0u64;
    if qm.is_dense() {
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            let bins = qm.dense_row(row as usize).expect("dense storage");
            for f in f_range.clone() {
                let b = bins[f];
                if b == MISSING_BIN {
                    continue;
                }
                let cell = (mapper.bin_offset(f) + u32::from(b)) as usize * 2;
                hist[cell] += f64::from(g);
                hist[cell + 1] += f64::from(h);
                cells += 1;
            }
        }
    } else {
        let full = f_range.start == 0 && f_range.end == qm.n_features();
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            let (cols, bins) = qm.sparse_row(row as usize).expect("sparse storage");
            let (lo, hi) = if full {
                (0, cols.len())
            } else {
                (
                    cols.partition_point(|&c| (c as usize) < f_range.start),
                    cols.partition_point(|&c| (c as usize) < f_range.end),
                )
            };
            for k in lo..hi {
                let f = cols[k] as usize;
                let cell = (mapper.bin_offset(f) + u32::from(bins[k])) as usize * 2;
                hist[cell] += f64::from(g);
                hist[cell + 1] += f64::from(h);
                cells += 1;
            }
        }
    }
    cells
}

/// After this many linear probe steps, the sparse column merge-walk switches
/// to a `partition_point` gallop (skewed columns degrade the linear cursor
/// to O(nnz_col) per node otherwise).
const GALLOP_AFTER: usize = 16;

/// Accumulates feature `f` over `rows` into `hist_f` (that feature's bins
/// only: `n_bins * 2` lanes), restricted to bins in `bin_range`. Returns the
/// accumulation count.
///
/// `rows` must be ascending (guaranteed by the stable partition).
pub fn col_scan(
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    match grads {
        GradSource::MemBuf(m) => {
            assert!(m.len() >= rows.len(), "MemBuf shorter than the row set");
            col_scan_impl(qm, f, rows, MemBufRead(m), bin_range, hist_f)
        }
        GradSource::Global(g) => col_scan_impl(qm, f, rows, GlobalRead(g), bin_range, hist_f),
    }
}

fn col_scan_impl<G: GradRead>(
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: G,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    let mut cells = 0u64;
    let full_bins = bin_range.start == 0 && bin_range.end >= qm.mapper().n_bins(f) as usize;
    if let Some(col) = qm.dense_col(f) {
        for (i, &row) in rows.iter().enumerate() {
            if i + PREFETCH_ROWS < rows.len() {
                prefetch_read(&col[rows[i + PREFETCH_ROWS] as usize]);
            }
            let b = col[row as usize];
            if b == MISSING_BIN {
                continue;
            }
            if !full_bins && !bin_range.contains(&(b as usize)) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            let cell = usize::from(b) * 2;
            hist_f[cell] += f64::from(g);
            hist_f[cell + 1] += f64::from(h);
            cells += 1;
        }
    } else {
        // Sparse: merge-walk the CSC column (rows ascending) with the node's
        // rows (also ascending), galloping over long gaps.
        let (col_rows, col_bins) = qm.sparse_col(f).expect("sparse storage");
        let mut k = 0usize;
        for (i, &row) in rows.iter().enumerate() {
            let mut steps = 0usize;
            while k < col_rows.len() && col_rows[k] < row {
                k += 1;
                steps += 1;
                if steps == GALLOP_AFTER {
                    k += col_rows[k..].partition_point(|&r| r < row);
                    break;
                }
            }
            if k == col_rows.len() {
                break;
            }
            if col_rows[k] == row {
                let b = col_bins[k];
                if full_bins || bin_range.contains(&(b as usize)) {
                    let [g, h] = grads.get(i, row);
                    let cell = usize::from(b) * 2;
                    hist_f[cell] += f64::from(g);
                    hist_f[cell + 1] += f64::from(h);
                    cells += 1;
                }
                k += 1;
            }
        }
    }
    cells
}

/// The scalar column-scan reference (per-cell gradient `match`, linear
/// merge cursor); see [`row_scan_scalar`].
pub fn col_scan_scalar(
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    let mut cells = 0u64;
    let full_bins = bin_range.start == 0 && bin_range.end >= qm.mapper().n_bins(f) as usize;
    if let Some(col) = qm.dense_col(f) {
        for (i, &row) in rows.iter().enumerate() {
            let b = col[row as usize];
            if b == MISSING_BIN {
                continue;
            }
            if !full_bins && !bin_range.contains(&(b as usize)) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            let cell = usize::from(b) * 2;
            hist_f[cell] += f64::from(g);
            hist_f[cell + 1] += f64::from(h);
            cells += 1;
        }
    } else {
        let (col_rows, col_bins) = qm.sparse_col(f).expect("sparse storage");
        let mut k = 0usize;
        for (i, &row) in rows.iter().enumerate() {
            while k < col_rows.len() && col_rows[k] < row {
                k += 1;
            }
            if k == col_rows.len() {
                break;
            }
            if col_rows[k] == row {
                let b = col_bins[k];
                if full_bins || bin_range.contains(&(b as usize)) {
                    let [g, h] = grads.get(i, row);
                    let cell = usize::from(b) * 2;
                    hist_f[cell] += f64::from(g);
                    hist_f[cell + 1] += f64::from(h);
                    cells += 1;
                }
                k += 1;
            }
        }
    }
    cells
}

/// Estimated bytes moved per accumulation, for the memory-bound proxy:
/// 16 B GHSum read + 16 B write + 1 B bin + 8 B gradient.
pub const BYTES_PER_CELL: u64 = 41;

/// FLOPs per accumulation (one add each for g and h).
pub const FLOPS_PER_CELL: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use harp_binning::BinningConfig;
    use harp_data::{CsrMatrix, DenseMatrix, FeatureMatrix};

    fn dense_qm() -> QuantizedMatrix {
        // 6 rows x 3 features; feature 1 has two missing cells.
        let m = FeatureMatrix::Dense(DenseMatrix::from_vec(
            6,
            3,
            vec![
                0.0,
                5.0,
                1.0, //
                1.0,
                f32::NAN,
                1.0, //
                2.0,
                6.0,
                0.0, //
                0.0,
                5.0,
                0.0, //
                1.0,
                f32::NAN,
                1.0, //
                2.0,
                7.0,
                0.0,
            ],
        ));
        QuantizedMatrix::from_matrix(&m, BinningConfig::default())
    }

    fn sparse_qm() -> QuantizedMatrix {
        let m = FeatureMatrix::Sparse(CsrMatrix::from_rows(
            3,
            &[vec![(0, 1.0), (2, 4.0)], vec![(1, 2.0)], vec![(0, 2.0), (1, 3.0)], vec![(2, 5.0)]],
        ));
        QuantizedMatrix::from_matrix(&m, BinningConfig::default())
    }

    fn grads(n: usize) -> Vec<GradPair> {
        (0..n).map(|i| [1.0 + i as f32, 0.5]).collect()
    }

    /// Padded buffer: real cells plus the per-feature sinks.
    fn hist_for(qm: &QuantizedMatrix) -> Vec<f64> {
        vec![0.0; qm.mapper().total_bins() as usize * 2 + sink_lanes(qm.n_features())]
    }

    /// Reference accumulation via the slow accessor (padded, sinks zero).
    fn reference(
        qm: &QuantizedMatrix,
        rows: &[u32],
        g: &[GradPair],
        f_range: Range<usize>,
    ) -> Vec<f64> {
        let mut hist = hist_for(qm);
        for &row in rows {
            for f in f_range.clone() {
                if let Some(b) = qm.bin(row as usize, f) {
                    let cell = (qm.mapper().bin_offset(f) + u32::from(b)) as usize * 2;
                    hist[cell] += f64::from(g[row as usize][0]);
                    hist[cell + 1] += f64::from(g[row as usize][1]);
                }
            }
        }
        hist
    }

    #[test]
    fn row_scan_dense_matches_reference() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = vec![0, 2, 3, 5];
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
        assert_eq!(cells, 12); // 4 rows x 3 features, none missing for these rows
    }

    #[test]
    fn row_scan_skips_missing() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = vec![1, 4]; // rows with a missing feature-1 cell
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(cells, 4);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
    }

    #[test]
    fn row_scan_strips_sink_cells() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = (0..6).collect();
        let mut hist = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        let total = qm.mapper().total_bins() as usize;
        assert!(hist[total * 2..].iter().all(|&x| x == 0.0), "sinks must leave zeroed");
    }

    #[test]
    fn row_scan_feature_block_restricts_columns() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = (0..6).collect();
        let mut hist = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 1..2, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 1..2));
        // Feature 0's cells untouched.
        let f0_cells = qm.mapper().n_bins(0) as usize * 2;
        assert!(hist[..f0_cells].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn row_scan_membuf_matches_global() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = vec![5, 0, 3]; // arbitrary subset, any order
        let membuf: Vec<GradPair> = rows.iter().map(|&r| g[r as usize]).collect();
        let mut h1 = hist_for(&qm);
        let mut h2 = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut h1);
        row_scan(&qm, &rows, GradSource::MemBuf(&membuf), 0..3, &mut h2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn row_scan_root_matches_slice_scan() {
        for qm in [dense_qm(), sparse_qm()] {
            let n = qm.n_rows();
            let g = grads(n);
            let m = qm.n_features();
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut by_slice = hist_for(&qm);
            let mut by_range = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..m, &mut by_slice);
            row_scan_root(&qm, 0..n, GradSource::Global(&g), 0..m, &mut by_range);
            assert_eq!(by_slice, by_range);
            // MemBuf at the root: position == row id.
            let mut by_membuf = hist_for(&qm);
            row_scan_root(&qm, 0..n, GradSource::MemBuf(&g), 0..m, &mut by_membuf);
            assert_eq!(by_slice, by_membuf);
            // A strict sub-range too.
            let mut sub_slice = hist_for(&qm);
            let mut sub_range = hist_for(&qm);
            row_scan(&qm, &rows[1..n], GradSource::Global(&g), 0..m, &mut sub_slice);
            row_scan_root(&qm, 1..n, GradSource::Global(&g), 0..m, &mut sub_range);
            assert_eq!(sub_slice, sub_range);
        }
    }

    #[test]
    fn row_scan_matches_scalar_bitwise() {
        for qm in [dense_qm(), sparse_qm()] {
            let n = qm.n_rows();
            let g = grads(n);
            let m = qm.n_features();
            for f_range in [0..m, 1..m, 0..1] {
                let rows: Vec<u32> = (0..n as u32).collect();
                let mut fast = hist_for(&qm);
                let mut scalar = hist_for(&qm);
                let cf = row_scan(&qm, &rows, GradSource::Global(&g), f_range.clone(), &mut fast);
                let cs = row_scan_scalar(&qm, &rows, GradSource::Global(&g), f_range, &mut scalar);
                assert_eq!(cf, cs);
                assert_eq!(fast, scalar);
            }
        }
    }

    #[test]
    fn row_scan_sparse_matches_reference() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![0, 1, 2, 3];
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(cells, 6);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
    }

    #[test]
    fn row_scan_sparse_feature_block() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![0, 2, 3];
        let mut hist = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 1..3, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 1..3));
    }

    #[test]
    fn col_scan_matches_row_scan_per_feature() {
        for qm in [dense_qm(), sparse_qm()] {
            let n = qm.n_rows();
            let g = grads(n);
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut full = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..qm.n_features(), &mut full);
            for f in 0..qm.n_features() {
                let n_bins = qm.mapper().n_bins(f) as usize;
                let mut hist_f = vec![0.0; n_bins * 2];
                col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut hist_f);
                let base = qm.mapper().bin_offset(f) as usize * 2;
                assert_eq!(&full[base..base + n_bins * 2], &hist_f[..], "feature {f}");
                let mut scalar_f = vec![0.0; n_bins * 2];
                col_scan_scalar(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut scalar_f);
                assert_eq!(hist_f, scalar_f, "feature {f} scalar col_scan");
            }
        }
    }

    #[test]
    fn col_scan_bin_block_restricts_bins() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = (0..6).collect();
        let f = 0;
        let n_bins = qm.mapper().n_bins(f) as usize;
        assert!(n_bins >= 3);
        let mut blocked = vec![0.0; n_bins * 2];
        col_scan(&qm, f, &rows, GradSource::Global(&g), 0..1, &mut blocked);
        let mut full = vec![0.0; n_bins * 2];
        col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut full);
        assert_eq!(&blocked[..2], &full[..2]);
        assert!(blocked[2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn col_scan_subset_rows_sparse() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![1, 2]; // subset; ascending
        for f in 0..3 {
            let n_bins = qm.mapper().n_bins(f) as usize;
            if n_bins == 0 {
                continue;
            }
            let mut hist_f = vec![0.0; n_bins * 2];
            col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut hist_f);
            let reference_full = reference(&qm, &rows, &g, f..f + 1);
            let base = qm.mapper().bin_offset(f) as usize * 2;
            assert_eq!(&reference_full[base..base + n_bins * 2], &hist_f[..], "feature {f}");
        }
    }

    #[test]
    fn col_scan_gallops_over_skewed_column() {
        // One hot column where the node's rows all sit past a long dense
        // prefix: the gallop must skip the prefix, and the result must match
        // the linear-cursor scalar walk exactly.
        let n = 2000usize;
        let rows_data: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|r| {
                let mut entries = vec![(0u32, (r % 7) as f32)];
                if r >= n - 5 {
                    entries.push((1, 1.0));
                }
                entries
            })
            .collect();
        let m = FeatureMatrix::Sparse(CsrMatrix::from_rows(2, &rows_data));
        let qm = QuantizedMatrix::from_matrix(&m, BinningConfig::default());
        let g = grads(n);
        // A small, skewed row set near the tail: the feature-0 column cursor
        // would otherwise crawl its whole nnz.
        let rows: Vec<u32> = ((n - 8) as u32..n as u32).collect();
        for f in 0..2 {
            let n_bins = qm.mapper().n_bins(f) as usize;
            let mut fast = vec![0.0; n_bins * 2];
            let mut scalar = vec![0.0; n_bins * 2];
            let cf = col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut fast);
            let cs = col_scan_scalar(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut scalar);
            assert_eq!(cf, cs, "feature {f} cell count");
            assert_eq!(fast, scalar, "feature {f}");
        }
    }

    #[test]
    fn grad_source_select_prefers_membuf() {
        let g = grads(2);
        let mb = grads(1);
        assert!(matches!(GradSource::select(&mb, &g), GradSource::MemBuf(_)));
        assert!(matches!(GradSource::select(&[], &g), GradSource::Global(_)));
    }
}
