//! BuildHist scan kernels (Algorithm 2).
//!
//! Two access patterns, matching the two parallelism families of §II-B:
//!
//! * [`row_scan`] — walk a set of rows, accumulating every feature in a
//!   feature block: the data-parallel kernel (writes span the whole feature
//!   block of one node — a private replica or an exclusively owned buffer).
//! * [`col_scan`] — walk one feature column restricted to a node's rows:
//!   the model-parallel kernel (writes confined to that feature's bins of
//!   that node — a `16 × bin_blk × feature_blk × node_blk` region, §IV-E).
//!
//! Both return the number of histogram accumulations performed so drivers
//! can report byte traffic and FLOPs to the profiler. Gradients are read
//! from the node-aligned MemBuf slice when available, otherwise gathered
//! from the global gradient array by row id (the "+MemBuf" ablation of
//! Table V toggles exactly this).

use crate::loss::GradPair;
use harp_binning::{QuantizedMatrix, MISSING_BIN};
use std::ops::Range;

/// Gradient source for a node scan: MemBuf slice or global gather.
#[derive(Clone, Copy)]
pub enum GradSource<'a> {
    /// Node-aligned `(g, h)` replica; index = position within the node.
    MemBuf(&'a [GradPair]),
    /// Global array indexed by row id (random access).
    Global(&'a [GradPair]),
}

impl<'a> GradSource<'a> {
    /// Picks MemBuf when the slice is non-empty, else the global array.
    pub fn select(membuf: &'a [GradPair], global: &'a [GradPair]) -> Self {
        if membuf.is_empty() {
            GradSource::Global(global)
        } else {
            GradSource::MemBuf(membuf)
        }
    }

    #[inline]
    fn get(&self, pos_in_node: usize, row: u32) -> GradPair {
        match self {
            GradSource::MemBuf(m) => m[pos_in_node],
            GradSource::Global(g) => g[row as usize],
        }
    }
}

/// Accumulates `rows` × features `f_range` into `hist` (one node's full
/// buffer, indexed by the mapper's bin offsets). Returns accumulation count.
///
/// `offsets[f]` must be the flattened bin offset of feature `f`.
pub fn row_scan(
    qm: &QuantizedMatrix,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let mapper = qm.mapper();
    let mut cells = 0u64;
    if qm.is_dense() {
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            let bins = qm.dense_row(row as usize).expect("dense storage");
            for f in f_range.clone() {
                let b = bins[f];
                if b == MISSING_BIN {
                    continue;
                }
                let cell = (mapper.bin_offset(f) + u32::from(b)) as usize * 2;
                hist[cell] += f64::from(g);
                hist[cell + 1] += f64::from(h);
                cells += 1;
            }
        }
    } else {
        let full = f_range.start == 0 && f_range.end == qm.n_features();
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            let (cols, bins) = qm.sparse_row(row as usize).expect("sparse storage");
            // Restrict to the feature block; row entries are sorted by column.
            let (lo, hi) = if full {
                (0, cols.len())
            } else {
                (
                    cols.partition_point(|&c| (c as usize) < f_range.start),
                    cols.partition_point(|&c| (c as usize) < f_range.end),
                )
            };
            for k in lo..hi {
                let f = cols[k] as usize;
                let cell = (mapper.bin_offset(f) + u32::from(bins[k])) as usize * 2;
                hist[cell] += f64::from(g);
                hist[cell + 1] += f64::from(h);
                cells += 1;
            }
        }
    }
    cells
}

/// Accumulates feature `f` over `rows` into `hist_f` (that feature's bins
/// only: `n_bins * 2` lanes), restricted to bins in `bin_range`. Returns the
/// accumulation count.
///
/// `rows` must be ascending (guaranteed by the stable partition).
pub fn col_scan(
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    let mut cells = 0u64;
    let full_bins = bin_range.start == 0 && bin_range.end >= qm.mapper().n_bins(f) as usize;
    if let Some(col) = qm.dense_col(f) {
        for (i, &row) in rows.iter().enumerate() {
            let b = col[row as usize];
            if b == MISSING_BIN {
                continue;
            }
            if !full_bins && !bin_range.contains(&(b as usize)) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            let cell = usize::from(b) * 2;
            hist_f[cell] += f64::from(g);
            hist_f[cell + 1] += f64::from(h);
            cells += 1;
        }
    } else {
        // Sparse: merge-walk the CSC column (rows ascending) with the node's
        // rows (also ascending).
        let (col_rows, col_bins) = qm.sparse_col(f).expect("sparse storage");
        let mut k = 0usize;
        for (i, &row) in rows.iter().enumerate() {
            while k < col_rows.len() && col_rows[k] < row {
                k += 1;
            }
            if k == col_rows.len() {
                break;
            }
            if col_rows[k] == row {
                let b = col_bins[k];
                if full_bins || bin_range.contains(&(b as usize)) {
                    let [g, h] = grads.get(i, row);
                    let cell = usize::from(b) * 2;
                    hist_f[cell] += f64::from(g);
                    hist_f[cell + 1] += f64::from(h);
                    cells += 1;
                }
                k += 1;
            }
        }
    }
    cells
}

/// Estimated bytes moved per accumulation, for the memory-bound proxy:
/// 16 B GHSum read + 16 B write + 1 B bin + 8 B gradient.
pub const BYTES_PER_CELL: u64 = 41;

/// FLOPs per accumulation (one add each for g and h).
pub const FLOPS_PER_CELL: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use harp_binning::BinningConfig;
    use harp_data::{CsrMatrix, DenseMatrix, FeatureMatrix};

    fn dense_qm() -> QuantizedMatrix {
        // 6 rows x 3 features; feature 1 has two missing cells.
        let m = FeatureMatrix::Dense(DenseMatrix::from_vec(
            6,
            3,
            vec![
                0.0,
                5.0,
                1.0, //
                1.0,
                f32::NAN,
                1.0, //
                2.0,
                6.0,
                0.0, //
                0.0,
                5.0,
                0.0, //
                1.0,
                f32::NAN,
                1.0, //
                2.0,
                7.0,
                0.0,
            ],
        ));
        QuantizedMatrix::from_matrix(&m, BinningConfig::default())
    }

    fn sparse_qm() -> QuantizedMatrix {
        let m = FeatureMatrix::Sparse(CsrMatrix::from_rows(
            3,
            &[vec![(0, 1.0), (2, 4.0)], vec![(1, 2.0)], vec![(0, 2.0), (1, 3.0)], vec![(2, 5.0)]],
        ));
        QuantizedMatrix::from_matrix(&m, BinningConfig::default())
    }

    fn grads(n: usize) -> Vec<GradPair> {
        (0..n).map(|i| [1.0 + i as f32, 0.5]).collect()
    }

    fn hist_for(qm: &QuantizedMatrix) -> Vec<f64> {
        vec![0.0; qm.mapper().total_bins() as usize * 2]
    }

    /// Reference accumulation via the slow accessor.
    fn reference(
        qm: &QuantizedMatrix,
        rows: &[u32],
        g: &[GradPair],
        f_range: Range<usize>,
    ) -> Vec<f64> {
        let mut hist = hist_for(qm);
        for &row in rows {
            for f in f_range.clone() {
                if let Some(b) = qm.bin(row as usize, f) {
                    let cell = (qm.mapper().bin_offset(f) + u32::from(b)) as usize * 2;
                    hist[cell] += f64::from(g[row as usize][0]);
                    hist[cell + 1] += f64::from(g[row as usize][1]);
                }
            }
        }
        hist
    }

    #[test]
    fn row_scan_dense_matches_reference() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = vec![0, 2, 3, 5];
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
        assert_eq!(cells, 12); // 4 rows x 3 features, none missing for these rows
    }

    #[test]
    fn row_scan_skips_missing() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = vec![1, 4]; // rows with a missing feature-1 cell
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(cells, 4);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
    }

    #[test]
    fn row_scan_feature_block_restricts_columns() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = (0..6).collect();
        let mut hist = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 1..2, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 1..2));
        // Feature 0's cells untouched.
        let f0_cells = qm.mapper().n_bins(0) as usize * 2;
        assert!(hist[..f0_cells].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn row_scan_membuf_matches_global() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = vec![5, 0, 3]; // arbitrary subset, any order
        let membuf: Vec<GradPair> = rows.iter().map(|&r| g[r as usize]).collect();
        let mut h1 = hist_for(&qm);
        let mut h2 = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut h1);
        row_scan(&qm, &rows, GradSource::MemBuf(&membuf), 0..3, &mut h2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn row_scan_sparse_matches_reference() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![0, 1, 2, 3];
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(cells, 6);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
    }

    #[test]
    fn row_scan_sparse_feature_block() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![0, 2, 3];
        let mut hist = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 1..3, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 1..3));
    }

    #[test]
    fn col_scan_matches_row_scan_per_feature() {
        for qm in [dense_qm(), sparse_qm()] {
            let n = qm.n_rows();
            let g = grads(n);
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut full = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..qm.n_features(), &mut full);
            for f in 0..qm.n_features() {
                let n_bins = qm.mapper().n_bins(f) as usize;
                let mut hist_f = vec![0.0; n_bins * 2];
                col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut hist_f);
                let base = qm.mapper().bin_offset(f) as usize * 2;
                assert_eq!(&full[base..base + n_bins * 2], &hist_f[..], "feature {f}");
            }
        }
    }

    #[test]
    fn col_scan_bin_block_restricts_bins() {
        let qm = dense_qm();
        let g = grads(6);
        let rows: Vec<u32> = (0..6).collect();
        let f = 0;
        let n_bins = qm.mapper().n_bins(f) as usize;
        assert!(n_bins >= 3);
        let mut blocked = vec![0.0; n_bins * 2];
        col_scan(&qm, f, &rows, GradSource::Global(&g), 0..1, &mut blocked);
        let mut full = vec![0.0; n_bins * 2];
        col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut full);
        assert_eq!(&blocked[..2], &full[..2]);
        assert!(blocked[2..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn col_scan_subset_rows_sparse() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![1, 2]; // subset; ascending
        for f in 0..3 {
            let n_bins = qm.mapper().n_bins(f) as usize;
            if n_bins == 0 {
                continue;
            }
            let mut hist_f = vec![0.0; n_bins * 2];
            col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut hist_f);
            let reference_full = reference(&qm, &rows, &g, f..f + 1);
            let base = qm.mapper().bin_offset(f) as usize * 2;
            assert_eq!(&reference_full[base..base + n_bins * 2], &hist_f[..], "feature {f}");
        }
    }

    #[test]
    fn grad_source_select_prefers_membuf() {
        let g = grads(2);
        let mb = grads(1);
        assert!(matches!(GradSource::select(&mb, &g), GradSource::MemBuf(_)));
        assert!(matches!(GradSource::select(&[], &g), GradSource::Global(_)));
    }
}
