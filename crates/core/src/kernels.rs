//! BuildHist scan kernels (Algorithm 2).
//!
//! Two access patterns, matching the two parallelism families of §II-B:
//!
//! * [`row_scan`] — walk a set of rows, accumulating every feature in a
//!   feature block: the data-parallel kernel (writes span the whole feature
//!   block of one node — a private replica or an exclusively owned buffer).
//! * [`col_scan`] — walk one feature column restricted to a node's rows:
//!   the model-parallel kernel (writes confined to that feature's bins of
//!   that node — a `16 × bin_blk × feature_blk × node_blk` region, §IV-E).
//!
//! Both are monomorphized over [`GradRead`] (MemBuf slice vs. global
//! gather, the "+MemBuf" ablation of Table V) so the per-cell gradient
//! dispatch disappears, and both index the mapper's flattened
//! [`harp_binning::BinMapper::bin_offsets`] table directly. Each kernel
//! picks a storage-specific body — dense `u8`, nibble-packed u4, bundled,
//! or sparse CSR/CSC (DESIGN.md §13) — and a [`SimdTier`] accumulate path
//! detected once at startup (SSE2 is the x86-64 baseline; AVX2 folds two
//! *distinct* cells per 256-bit add). Every tier performs the identical
//! per-cell IEEE adds in the identical row-ascending order, so output is
//! bitwise identical to the retained scalar reference ([`row_scan_scalar`]
//! / [`col_scan_scalar`]).
//!
//! The dense bodies route `MISSING_BIN` cells branch-free into per-feature
//! *sink cells* appended past the real histogram (see [`row_scan`] for the
//! layout contract) and zero them before the buffer leaves the kernel; the
//! bundled body routes absent cells into one shared sink cell the same
//! way. Sparse storage has no missing sentinel to route and needs no sink
//! padding.
//!
//! All kernels return the number of histogram accumulations performed so
//! drivers can report byte traffic and FLOPs to the profiler.

use crate::loss::GradPair;
use harp_binning::{QuantizedMatrix, MISSING_BIN};
use std::ops::Range;
use std::sync::OnceLock;

/// Gradient source for a node scan: MemBuf slice or global gather.
#[derive(Clone, Copy)]
pub enum GradSource<'a> {
    /// Node-aligned `(g, h)` replica; index = position within the node.
    MemBuf(&'a [GradPair]),
    /// Global array indexed by row id (random access).
    Global(&'a [GradPair]),
}

impl<'a> GradSource<'a> {
    /// Picks MemBuf when the slice is non-empty, else the global array.
    pub fn select(membuf: &'a [GradPair], global: &'a [GradPair]) -> Self {
        if membuf.is_empty() {
            GradSource::Global(global)
        } else {
            GradSource::MemBuf(membuf)
        }
    }

    #[inline]
    fn get(&self, pos_in_node: usize, row: u32) -> GradPair {
        match self {
            GradSource::MemBuf(m) => m[pos_in_node],
            GradSource::Global(g) => g[row as usize],
        }
    }
}

/// Monomorphized gradient access: implementations resolve either by scan
/// position (MemBuf) or by row id (global gather) with no per-cell branch.
trait GradRead: Copy {
    /// The `(g, h)` pair of the `i`-th scanned row, whose row id is `row`.
    fn get(&self, i: usize, row: u32) -> GradPair;
    /// Hints the upcoming access; no-op where the walk is sequential.
    fn prefetch(&self, i: usize, row: u32);
}

#[derive(Clone, Copy)]
struct MemBufRead<'a>(&'a [GradPair]);

impl GradRead for MemBufRead<'_> {
    #[inline(always)]
    fn get(&self, i: usize, _row: u32) -> GradPair {
        self.0[i]
    }

    #[inline(always)]
    fn prefetch(&self, _i: usize, _row: u32) {
        // Sequential walk; the hardware prefetcher covers it.
    }
}

#[derive(Clone, Copy)]
struct GlobalRead<'a>(&'a [GradPair]);

impl GradRead for GlobalRead<'_> {
    #[inline(always)]
    fn get(&self, _i: usize, row: u32) -> GradPair {
        self.0[row as usize]
    }

    #[inline(always)]
    fn prefetch(&self, _i: usize, row: u32) {
        if let Some(p) = self.0.get(row as usize) {
            prefetch_read(std::ptr::from_ref(p));
        }
    }
}

/// Monomorphized row-id access: an explicit id slice or a contiguous range
/// (the root fast path, where the id is the scan position itself).
trait RowSet: Copy {
    /// True when row `i` is `base + i`: accesses keyed by the row id walk
    /// memory sequentially, so software prefetch is pure overhead.
    const SEQUENTIAL: bool;
    fn len(&self) -> usize;
    fn get(&self, i: usize) -> u32;
}

#[derive(Clone, Copy)]
struct SliceRows<'a>(&'a [u32]);

impl RowSet for SliceRows<'_> {
    const SEQUENTIAL: bool = false;

    #[inline(always)]
    fn len(&self) -> usize {
        self.0.len()
    }

    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        self.0[i]
    }
}

#[derive(Clone, Copy)]
struct ContigRows {
    base: u32,
    len: usize,
}

impl RowSet for ContigRows {
    const SEQUENTIAL: bool = true;

    #[inline(always)]
    fn len(&self) -> usize {
        self.len
    }

    #[inline(always)]
    fn get(&self, i: usize) -> u32 {
        self.base + i as u32
    }
}

/// How many rows ahead the dense scan prefetches bin rows and gathered
/// gradients (two unrolled quads).
pub const PREFETCH_ROWS: usize = 8;

/// Software prefetch into all cache levels; portable no-op off x86-64.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a hint; it never faults, even on bad addresses.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Lanes a row-scan histogram buffer must have beyond the real cells: one
/// `(Σg, Σh)` sink cell per feature, appended after `total_bins`.
pub fn sink_lanes(n_features: usize) -> usize {
    n_features * 2
}

// ---------------------------------------------------------------------------
// SIMD tier detection
// ---------------------------------------------------------------------------

/// Instruction tier the specialized kernels accumulate with, detected once
/// at first use. `HARP_SIMD_TIER=scalar|sse2|avx2` overrides, clamped to
/// what the CPU supports. Every tier produces bitwise-identical histograms
/// (DESIGN.md §13): the lanes of a 128/256-bit add are independent IEEE
/// adds, and cells are never paired unless provably distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdTier {
    /// Portable two-scalar-adds path (also the non-x86-64 fallback).
    Scalar,
    /// One 128-bit `(Σg, Σh)` add per cell; x86-64 baseline.
    Sse2,
    /// Two distinct cells folded per 256-bit add (sparse pairs, u4 feature
    /// pairs); runtime-gated on `is_x86_feature_detected!("avx2")`.
    Avx2,
}

impl SimdTier {
    /// Stable lowercase name for ledger/report surfaces.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Sse2 => "sse2",
            SimdTier::Avx2 => "avx2",
        }
    }

    /// Ledger encoding: 0 = scalar, 1 = sse2, 2 = avx2.
    pub fn as_u64(self) -> u64 {
        self as u64
    }
}

/// The widest tier this CPU supports.
fn detected_tier() -> SimdTier {
    static DETECTED: OnceLock<SimdTier> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx2") {
                SimdTier::Avx2
            } else {
                SimdTier::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdTier::Scalar
        }
    })
}

/// The tier the specialized kernels dispatch to (detection ∧ the optional
/// `HARP_SIMD_TIER` override), cached after the first call.
pub fn simd_tier() -> SimdTier {
    static TIER: OnceLock<SimdTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        let detected = detected_tier();
        match std::env::var("HARP_SIMD_TIER").ok().as_deref() {
            Some("scalar") => SimdTier::Scalar,
            Some("sse2") => SimdTier::Sse2.min(detected),
            Some("avx2") => SimdTier::Avx2.min(detected),
            _ => detected,
        }
    })
}

// ---------------------------------------------------------------------------
// Cell accumulators
// ---------------------------------------------------------------------------

/// One histogram-cell accumulate, monomorphized per [`SimdTier`]. A "cell"
/// is the `(Σg, Σh)` f64 pair at lanes `cell` and `cell + 1`. All
/// implementations perform the same two IEEE f64 adds — SIMD variants just
/// issue them as one (or, for provably distinct cells, two) vector ops, so
/// results are bitwise identical across tiers.
trait CellAcc: Copy {
    /// The packed `(g, h)` pair, widened to f64 once per row.
    type Gh: Copy;

    fn pack(g: f32, h: f32) -> Self::Gh;

    /// Accumulates `gh` into the cell at lanes `cell..cell + 2`.
    ///
    /// # Safety
    /// `cell + 1` must be in bounds of the buffer behind `hp`.
    unsafe fn add(hp: *mut f64, cell: usize, gh: Self::Gh);

    /// Accumulates `gh` into two cells of the same row.
    ///
    /// # Safety
    /// Both cells in bounds, and `cell0 != cell1` — a 256-bit fold of the
    /// same cell would collapse two ordered adds into one.
    #[inline(always)]
    unsafe fn add2(hp: *mut f64, cell0: usize, cell1: usize, gh: Self::Gh) {
        // SAFETY: forwarded per-cell contracts.
        unsafe {
            Self::add(hp, cell0, gh);
            Self::add(hp, cell1, gh);
        }
    }
}

#[derive(Clone, Copy)]
struct PortableAcc;

impl CellAcc for PortableAcc {
    type Gh = (f64, f64);

    #[inline(always)]
    fn pack(g: f32, h: f32) -> (f64, f64) {
        (f64::from(g), f64::from(h))
    }

    #[inline(always)]
    unsafe fn add(hp: *mut f64, cell: usize, gh: (f64, f64)) {
        // SAFETY: caller guarantees cell..cell + 2 in bounds.
        unsafe {
            *hp.add(cell) += gh.0;
            *hp.add(cell + 1) += gh.1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::CellAcc;
    use core::arch::x86_64::*;

    /// Baseline tier: one unaligned 128-bit `(Σg, Σh)` add per cell —
    /// lanewise IEEE, bitwise equal to two scalar f64 adds.
    #[derive(Clone, Copy)]
    pub(super) struct Sse2Acc;

    impl CellAcc for Sse2Acc {
        type Gh = __m128d;

        #[inline(always)]
        fn pack(g: f32, h: f32) -> __m128d {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { _mm_set_pd(f64::from(h), f64::from(g)) }
        }

        #[inline(always)]
        unsafe fn add(hp: *mut f64, cell: usize, gh: __m128d) {
            // SAFETY: caller guarantees bounds; loads/stores are unaligned.
            unsafe {
                let p = hp.add(cell);
                _mm_storeu_pd(p, _mm_add_pd(_mm_loadu_pd(p), gh));
            }
        }
    }

    /// AVX2 tier: per-cell math identical to SSE2, but two *distinct* cells
    /// of one row fold into a single 256-bit add. Only reached through the
    /// `#[target_feature(enable = "avx2")]` kernel wrappers.
    #[derive(Clone, Copy)]
    pub(super) struct Avx2Acc;

    impl CellAcc for Avx2Acc {
        type Gh = __m128d;

        #[inline(always)]
        fn pack(g: f32, h: f32) -> __m128d {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { _mm_set_pd(f64::from(h), f64::from(g)) }
        }

        #[inline(always)]
        unsafe fn add(hp: *mut f64, cell: usize, gh: __m128d) {
            // SAFETY: caller guarantees bounds.
            unsafe {
                let p = hp.add(cell);
                _mm_storeu_pd(p, _mm_add_pd(_mm_loadu_pd(p), gh));
            }
        }

        #[inline(always)]
        unsafe fn add2(hp: *mut f64, cell0: usize, cell1: usize, gh: __m128d) {
            // SAFETY: caller guarantees bounds and cell0 != cell1, so the
            // two 128-bit halves are independent IEEE adds.
            unsafe {
                let p0 = hp.add(cell0);
                let p1 = hp.add(cell1);
                let cur = _mm256_set_m128d(_mm_loadu_pd(p1), _mm_loadu_pd(p0));
                let sum = _mm256_add_pd(cur, _mm256_set_m128d(gh, gh));
                _mm_storeu_pd(p0, _mm256_castpd256_pd128(sum));
                _mm_storeu_pd(p1, _mm256_extractf128_pd::<1>(sum));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Row scan
// ---------------------------------------------------------------------------

/// Accumulates `rows` × features `f_range` into `hist` (one node's full
/// buffer, indexed by the mapper's bin offsets). Returns the accumulation
/// count (missing cells excluded).
///
/// # Layout contract
/// For dense storage (u8 or u4-packed), `hist` must be the *padded* layout
/// of [`crate::hist::hist_width`]: `total_bins * 2` real lanes followed by
/// [`sink_lanes`] zeroed sink lanes. Missing cells accumulate branch-free
/// into feature `f`'s sink cell at index `total_bins + f` and the kernel
/// re-zeroes the sinks of `f_range` before returning, so the buffer's real
/// cells — and the sinks — leave exactly as the scalar reference
/// ([`row_scan_scalar`]) produces them. Bundled storage routes absent
/// cells into one shared sink cell at lane `total_bins` (two extra lanes,
/// re-zeroed likewise); sparse storage has no absent entries to route and
/// needs no padding (`total_bins * 2` lanes suffice).
pub fn row_scan(
    qm: &QuantizedMatrix,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    row_scan_forced_tier(simd_tier(), qm, rows, grads, f_range, hist)
}

/// [`row_scan`] pinned to `tier` (clamped to the detected ceiling). Test
/// hook for the tier-equivalence suites.
#[doc(hidden)]
pub fn row_scan_forced_tier(
    tier: SimdTier,
    qm: &QuantizedMatrix,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let tier = tier.min(detected_tier());
    match grads {
        GradSource::MemBuf(m) => {
            assert!(m.len() >= rows.len(), "MemBuf shorter than the row set");
            row_scan_impl(qm, SliceRows(rows), MemBufRead(m), f_range, hist, tier)
        }
        GradSource::Global(g) => {
            row_scan_impl(qm, SliceRows(rows), GlobalRead(g), f_range, hist, tier)
        }
    }
}

/// [`row_scan`] over the contiguous rows `row_range` — the root fast path,
/// where the row set is `0..n` (or any span of it) and the MemBuf position
/// equals the row id, so the row-id indirection drops out entirely.
///
/// A `GradSource::MemBuf` slice must be aligned to `row_range` (entry `i`
/// belongs to row `row_range.start + i`), which at the root it is.
pub fn row_scan_root(
    qm: &QuantizedMatrix,
    row_range: Range<usize>,
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    assert!(row_range.end <= qm.n_rows(), "row range out of bounds");
    let tier = simd_tier().min(detected_tier());
    let rows = ContigRows { base: row_range.start as u32, len: row_range.len() };
    match grads {
        GradSource::MemBuf(m) => {
            assert!(m.len() >= rows.len, "MemBuf shorter than the row range");
            row_scan_impl(qm, rows, MemBufRead(m), f_range, hist, tier)
        }
        GradSource::Global(g) => row_scan_impl(qm, rows, GlobalRead(g), f_range, hist, tier),
    }
}

/// Storage × tier dispatch: u4-packed before plain dense (a pack rides on
/// dense storage), then bundled, then sparse.
fn row_scan_impl<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
    tier: SimdTier,
) -> u64 {
    let m = qm.n_features();
    assert!(f_range.end <= m, "feature range out of bounds");
    if let Some(pack) = qm.u4() {
        return match tier {
            SimdTier::Scalar => {
                u4_row_scan::<R, G, PortableAcc>(qm, pack, rows, grads, f_range, hist)
            }
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => {
                u4_row_scan::<R, G, x86::Sse2Acc>(qm, pack, rows, grads, f_range, hist)
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: tier is clamped to the detected ceiling, so AVX2 is
            // available on this CPU.
            SimdTier::Avx2 => unsafe { u4_row_scan_avx2(qm, pack, rows, grads, f_range, hist) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => u4_row_scan::<R, G, PortableAcc>(qm, pack, rows, grads, f_range, hist),
        };
    }
    if let Some(row_major) = qm.dense_row_major() {
        // No cell pairing in the dense u8 body (two rows of a quad may hit
        // the same cell), so AVX2 adds nothing over the SSE2 accumulate.
        return match tier {
            SimdTier::Scalar => {
                dense_row_scan::<R, G, PortableAcc>(qm, row_major, rows, grads, f_range, hist)
            }
            #[cfg(target_arch = "x86_64")]
            _ => dense_row_scan::<R, G, x86::Sse2Acc>(qm, row_major, rows, grads, f_range, hist),
            #[cfg(not(target_arch = "x86_64"))]
            _ => dense_row_scan::<R, G, PortableAcc>(qm, row_major, rows, grads, f_range, hist),
        };
    }
    if qm.is_bundled() {
        return match tier {
            SimdTier::Scalar => {
                bundled_row_scan::<R, G, PortableAcc>(qm, rows, grads, f_range, hist)
            }
            #[cfg(target_arch = "x86_64")]
            _ => bundled_row_scan::<R, G, x86::Sse2Acc>(qm, rows, grads, f_range, hist),
            #[cfg(not(target_arch = "x86_64"))]
            _ => bundled_row_scan::<R, G, PortableAcc>(qm, rows, grads, f_range, hist),
        };
    }
    match tier {
        SimdTier::Scalar => sparse_row_scan::<R, G, PortableAcc>(qm, rows, grads, f_range, hist),
        #[cfg(target_arch = "x86_64")]
        SimdTier::Sse2 => sparse_row_scan::<R, G, x86::Sse2Acc>(qm, rows, grads, f_range, hist),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: clamped tier ⇒ AVX2 available.
        SimdTier::Avx2 => unsafe { sparse_row_scan_avx2(qm, rows, grads, f_range, hist) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => sparse_row_scan::<R, G, PortableAcc>(qm, rows, grads, f_range, hist),
    }
}

/// The specialized dense body: 4-row unroll, feature-outer within each quad
/// (same-cell accumulation order stays row-ascending, as in the scalar
/// scan), software prefetch [`PREFETCH_ROWS`] ahead, and branch-free
/// missing-bin routing into the per-feature sinks.
fn dense_row_scan<R: RowSet, G: GradRead, A: CellAcc>(
    qm: &QuantizedMatrix,
    row_major: &[u8],
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let m = qm.n_features();
    let offsets = qm.mapper().bin_offsets();
    let total = qm.mapper().total_bins();
    assert!(
        hist.len() >= total as usize * 2 + sink_lanes(m),
        "dense row_scan needs the padded hist layout (total_bins*2 + sink lanes)"
    );
    let n = rows.len();
    let hp = hist.as_mut_ptr();

    // Per-cell safety: a stored bin is < n_bins(f) or MISSING_BIN (the
    // QuantizedMatrix invariant), so the selected index is either
    // offsets[f] + b < offsets[f+1] <= total or the sink total + f < total
    // + m; both fit the padded buffer asserted above.
    #[inline(always)]
    unsafe fn acc<A: CellAcc>(hp: *mut f64, off: u32, sink: u32, b: u8, gh: A::Gh) -> u64 {
        let miss = u32::from(b == MISSING_BIN);
        let mask = miss.wrapping_neg();
        let cell = (((off + u32::from(b)) & !mask) | (sink & mask)) as usize * 2;
        // SAFETY: cell bounds per the invariant above.
        unsafe {
            A::add(hp, cell, gh);
        }
        u64::from(1 - miss)
    }

    let row_bins = |row: u32| -> &[u8] { &row_major[row as usize * m..row as usize * m + m] };
    let mut cells = 0u64;
    let mut i = 0usize;
    while i + 4 <= n {
        if i + PREFETCH_ROWS + 4 <= n {
            for d in 0..4 {
                let r = rows.get(i + PREFETCH_ROWS + d);
                prefetch_read(&row_major[r as usize * m + f_range.start]);
                grads.prefetch(i + PREFETCH_ROWS + d, r);
            }
        }
        let (r0, r1, r2, r3) = (rows.get(i), rows.get(i + 1), rows.get(i + 2), rows.get(i + 3));
        let ([g0, h0], [g1, h1]) = (grads.get(i, r0), grads.get(i + 1, r1));
        let ([g2, h2], [g3, h3]) = (grads.get(i + 2, r2), grads.get(i + 3, r3));
        let (gh0, gh1, gh2, gh3) =
            (A::pack(g0, h0), A::pack(g1, h1), A::pack(g2, h2), A::pack(g3, h3));
        let (b0, b1, b2, b3) = (row_bins(r0), row_bins(r1), row_bins(r2), row_bins(r3));
        for f in f_range.clone() {
            // SAFETY: f < f_range.end <= m bounds every slice; cell indices
            // per the invariant above.
            unsafe {
                let off = *offsets.get_unchecked(f);
                let sink = total + f as u32;
                cells += acc::<A>(hp, off, sink, *b0.get_unchecked(f), gh0);
                cells += acc::<A>(hp, off, sink, *b1.get_unchecked(f), gh1);
                cells += acc::<A>(hp, off, sink, *b2.get_unchecked(f), gh2);
                cells += acc::<A>(hp, off, sink, *b3.get_unchecked(f), gh3);
            }
        }
        i += 4;
    }
    while i < n {
        let r = rows.get(i);
        let [g, h] = grads.get(i, r);
        let gh = A::pack(g, h);
        let bins = row_bins(r);
        for f in f_range.clone() {
            // SAFETY: as in the unrolled body.
            unsafe {
                let off = *offsets.get_unchecked(f);
                cells += acc::<A>(hp, off, total + f as u32, *bins.get_unchecked(f), gh);
            }
        }
        i += 1;
    }
    // Strip the sinks: missing mass never leaves the kernel, keeping the
    // buffer bitwise identical to the scalar reference.
    for f in f_range {
        hist[(total as usize + f) * 2] = 0.0;
        hist[(total as usize + f) * 2 + 1] = 0.0;
    }
    cells
}

/// The u4-packed dense body: half the bin bytes of [`dense_row_scan`], the
/// same 4-row unroll and sink routing, plus feature-pairing so the AVX2
/// tier folds two cells per add. Nibbles resolve to histogram lanes with
/// pure arithmetic — a stored nibble is either a real bin (`offset + nib`)
/// or `0xF`, whose meaning (bin 15 of a missing-free 16-bin feature, or
/// [`harp_binning::MISSING_NIBBLE`] → sink) is pre-resolved per feature
/// from the pack's lane table, so no per-cell table load is needed.
/// Distinct features always map to distinct lanes (disjoint bin windows;
/// per-feature sinks), satisfying the [`CellAcc::add2`] contract.
fn u4_row_scan<R: RowSet, G: GradRead, A: CellAcc>(
    qm: &QuantizedMatrix,
    pack: &harp_binning::U4Pack,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let m = qm.n_features();
    let total = qm.mapper().total_bins();
    assert!(
        hist.len() >= total as usize * 2 + sink_lanes(m),
        "u4 row_scan needs the padded hist layout (total_bins*2 + sink lanes)"
    );
    let offsets = qm.mapper().bin_offsets();
    let lanes = pack.lanes();
    let clean = pack.clean();
    let stride = pack.row_stride();
    let packed = pack.packed_rows();
    let hp = hist.as_mut_ptr();
    let n = rows.len();
    let mut cells = 0u64;

    /// Lane of one extracted nibble: `off + nib` for a real bin, the
    /// feature's pre-resolved nibble-15 lane (`l15`) otherwise. Branch-free
    /// (mask select), mirroring the dense u8 missing routing.
    #[inline(always)]
    fn lane(nib: u32, off: u32, l15: u32) -> u32 {
        let mask = u32::from(nib == 0xF).wrapping_neg();
        ((off + nib) & !mask) | (l15 & mask)
    }

    /// `(bin_offset, nibble-15 lane)` of feature `f`.
    ///
    /// # Safety
    /// `f < m` (offsets has m+1 entries, lanes has m*16).
    #[inline(always)]
    unsafe fn consts_of(offsets: &[u32], lanes: &[u32], f: usize) -> (u32, u32) {
        // SAFETY: per the contract above.
        unsafe { (*offsets.get_unchecked(f), *lanes.get_unchecked(f * 16 + 15)) }
    }

    let row_bits =
        |row: u32| -> &[u8] { &packed[row as usize * stride..row as usize * stride + stride] };
    let mut i = 0usize;
    while i + 4 <= n {
        if i + PREFETCH_ROWS + 4 <= n {
            for d in 0..4 {
                let r = rows.get(i + PREFETCH_ROWS + d);
                prefetch_read(&packed[r as usize * stride + (f_range.start >> 1)]);
                grads.prefetch(i + PREFETCH_ROWS + d, r);
            }
        }
        let (r0, r1, r2, r3) = (rows.get(i), rows.get(i + 1), rows.get(i + 2), rows.get(i + 3));
        let ([g0, h0], [g1, h1]) = (grads.get(i, r0), grads.get(i + 1, r1));
        let ([g2, h2], [g3, h3]) = (grads.get(i + 2, r2), grads.get(i + 3, r3));
        let (gh0, gh1, gh2, gh3) =
            (A::pack(g0, h0), A::pack(g1, h1), A::pack(g2, h2), A::pack(g3, h3));
        let (p0, p1, p2, p3) = (row_bits(r0), row_bits(r1), row_bits(r2), row_bits(r3));
        let quad = [(p0, gh0), (p1, gh1), (p2, gh2), (p3, gh3)];
        let mut f = f_range.start;
        // Head: an odd-aligned leading feature (high nibble of its byte) so
        // the paired body below always starts on a byte boundary.
        if f & 1 == 1 && f < f_range.end {
            // SAFETY: f < f_range.end <= m; f >> 1 < stride.
            unsafe {
                let (off, l15) = consts_of(offsets, lanes, f);
                for (p, gh) in quad {
                    let a = lane(u32::from(*p.get_unchecked(f >> 1) >> 4), off, l15);
                    A::add(hp, a as usize * 2, gh);
                    cells += u64::from(a < total);
                }
            }
            f += 1;
        }
        while f + 2 <= f_range.end {
            // SAFETY: f + 1 < f_range.end <= m; f is even so both nibbles
            // of byte f >> 1 belong to features f (low) and f + 1 (high),
            // whose lanes are always distinct (add2 contract).
            unsafe {
                let bix = f >> 1;
                let off0 = *offsets.get_unchecked(f);
                let off1 = *offsets.get_unchecked(f + 1);
                if *clean.get_unchecked(f) & *clean.get_unchecked(f + 1) {
                    // Missing-free feature pair: every nibble is a real
                    // bin, so the lane is plain offset arithmetic and the
                    // count is unconditional.
                    for (p, gh) in quad {
                        let byte = u32::from(*p.get_unchecked(bix));
                        let (a, b) = (off0 + (byte & 0xF), off1 + (byte >> 4));
                        A::add2(hp, a as usize * 2, b as usize * 2, gh);
                    }
                    cells += 8;
                } else {
                    let l15_0 = *lanes.get_unchecked(f * 16 + 15);
                    let l15_1 = *lanes.get_unchecked(f * 16 + 31);
                    for (p, gh) in quad {
                        let byte = u32::from(*p.get_unchecked(bix));
                        let (a, b) = (lane(byte & 0xF, off0, l15_0), lane(byte >> 4, off1, l15_1));
                        A::add2(hp, a as usize * 2, b as usize * 2, gh);
                        cells += u64::from(a < total) + u64::from(b < total);
                    }
                }
            }
            f += 2;
        }
        if f < f_range.end {
            // Tail: one even-aligned feature left (low nibble).
            // SAFETY: f < f_range.end <= m.
            unsafe {
                let (off, l15) = consts_of(offsets, lanes, f);
                for (p, gh) in quad {
                    let a = lane(u32::from(*p.get_unchecked(f >> 1) & 0xF), off, l15);
                    A::add(hp, a as usize * 2, gh);
                    cells += u64::from(a < total);
                }
            }
        }
        i += 4;
    }
    while i < n {
        let r = rows.get(i);
        let [g, h] = grads.get(i, r);
        let gh = A::pack(g, h);
        let p = row_bits(r);
        for f in f_range.clone() {
            // SAFETY: f < f_range.end <= m.
            unsafe {
                let (off, l15) = consts_of(offsets, lanes, f);
                let nib = u32::from((*p.get_unchecked(f >> 1) >> ((f & 1) * 4)) & 0xF);
                let a = lane(nib, off, l15);
                A::add(hp, a as usize * 2, gh);
                cells += u64::from(a < total);
            }
        }
        i += 1;
    }
    for f in f_range {
        hist[(total as usize + f) * 2] = 0.0;
        hist[(total as usize + f) * 2 + 1] = 0.0;
    }
    cells
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn u4_row_scan_avx2<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    pack: &harp_binning::U4Pack,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    u4_row_scan::<R, G, x86::Avx2Acc>(qm, pack, rows, grads, f_range, hist)
}

/// The bundled body: walk the synthetic dense columns and resolve each
/// stored bin through the per-column lane LUT, which lands accumulates
/// directly in the ORIGINAL flattened histogram (so FindSplit needs no
/// translation). A feature block restricts by lane window — feature `f`'s
/// lanes occupy `bin_offsets[f]..bin_offsets[f+1]`, so
/// `bin_offsets[start]..bin_offsets[end]` covers exactly `f_range`; missing
/// and conflict-dropped bins resolve to [`harp_binning::bundling::NO_LANE`]
/// (`u32::MAX`), which no window contains. Out-of-window cells accumulate
/// branch-free into one shared sink cell at lane `total_bins` (absence is
/// common in bundled data, so a branch would mispredict constantly); the
/// sink is re-zeroed before the buffer leaves the kernel.
fn bundled_row_scan<R: RowSet, G: GradRead, A: CellAcc>(
    qm: &QuantizedMatrix,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let map = qm.mapper().bundles().expect("bundled storage has a map");
    let brm = qm.bundled_row_major().expect("bundled storage");
    let n_cols = qm.n_storage_cols();
    let offsets = qm.mapper().bin_offsets();
    let total = qm.mapper().total_bins();
    assert!(
        hist.len() >= total as usize * 2 + 2,
        "bundled row_scan needs the sink cell past total_bins"
    );
    let lut = map.cell_lut_flat();
    let lane_lo = offsets[f_range.start];
    let win = offsets[f_range.end] - lane_lo;
    let hp = hist.as_mut_ptr();
    let n = rows.len();
    let mut cells = 0u64;
    for i in 0..n {
        let row = rows.get(i);
        if !R::SEQUENTIAL && i + PREFETCH_ROWS < n {
            let r = rows.get(i + PREFETCH_ROWS);
            prefetch_read(&brm[r as usize * n_cols]);
            grads.prefetch(i + PREFETCH_ROWS, r);
        }
        let [g, h] = grads.get(i, row);
        let gh = A::pack(g, h);
        let rb = &brm[row as usize * n_cols..row as usize * n_cols + n_cols];
        for (c, &b) in rb.iter().enumerate() {
            // SAFETY: the LUT has 256 entries per storage column; a passing
            // lane is < total and the sink is lane `total`, both in bounds
            // of the buffer asserted above.
            unsafe {
                let lane = *lut.get_unchecked((c << 8) | b as usize);
                let hit = lane.wrapping_sub(lane_lo) < win;
                let target = if hit { lane } else { total };
                A::add(hp, target as usize * 2, gh);
                cells += u64::from(hit);
            }
        }
    }
    hist[total as usize * 2] = 0.0;
    hist[total as usize * 2 + 1] = 0.0;
    cells
}

/// Entries resolved-and-prefetched ahead of accumulation by the sparse
/// scan: cell indices for up to one chunk are materialized (issuing a
/// prefetch each) before any of the chunk's adds run, so every random hist
/// access has a full chunk's worth of address-generation work between its
/// prefetch and its use — enough to cover a DRAM miss on multi-MB buffers.
const SPARSE_CHUNK: usize = 16;

/// Bin capacity of one internal pass of the sparse scan (≈ 1.5 MiB of
/// `(Σg, Σh)` cells, sized to sit inside a 2 MiB L2 with headroom for the
/// entry stream): histograms wider than this are built in feature blocks
/// small enough to stay cache-resident, instead of write-thrashing the
/// whole multi-MB buffer row by row.
const SPARSE_PASS_BINS: u32 = 96 * 1024;

/// The sparse CSR body: per-row feature-range restriction by binary search
/// and entry-paired accumulates (distinct columns ⇒ distinct cells, so the
/// AVX2 tier folds two per add). The random hist write is the bound, and
/// two layers address it:
///
/// * **Cache blocking.** When `f_range` spans more than
///   [`SPARSE_PASS_BINS`] bins, the scan runs in several feature-block
///   passes over the row set, each touching only a cache-sized slice of
///   the histogram. Distinct cells commute, and within one cell the row
///   order is unchanged, so the result stays bitwise identical to the
///   single-pass scalar reference.
/// * **Chunked prefetch.** Each row slice is processed in
///   [`SPARSE_CHUNK`]-entry chunks: phase one resolves the chunk's cell
///   indices into a stack buffer and prefetches each, phase two replays
///   the buffer into paired adds — same entry order, bitwise identical.
fn sparse_row_scan<R: RowSet, G: GradRead, A: CellAcc>(
    qm: &QuantizedMatrix,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let offsets = qm.mapper().bin_offsets();
    let total = qm.mapper().total_bins();
    assert!(hist.len() >= total as usize * 2, "hist shorter than total_bins * 2");
    let m = qm.n_features();
    let n = rows.len();
    let hp = hist.as_mut_ptr();
    let mut cells = 0u64;
    let mut cellbuf = [0usize; SPARSE_CHUNK];

    // SAFETY contract: k < cols.len(); cols[k] < m and bins[k] <
    // n_bins(cols[k]) (QuantizedMatrix invariant), so the returned cell is
    // < total_bins * 2.
    #[inline(always)]
    unsafe fn cell_at(offsets: &[u32], cols: &[u32], bins: &[u8], k: usize) -> usize {
        // SAFETY: per the contract above.
        unsafe {
            (*offsets.get_unchecked(*cols.get_unchecked(k) as usize) as usize
                + *bins.get_unchecked(k) as usize)
                * 2
        }
    }

    // Direct paired accumulate over one row slice `[lo, hi)` — used by the
    // cache-blocked passes, where the histogram slice is cache-resident
    // and the prefetch phase of the chunked variant would be dead weight.
    //
    // SAFETY contract: `lo <= hi <= cols.len()`; paired cells belong to
    // strictly ascending columns, hence are distinct (add2 contract).
    #[inline(always)]
    unsafe fn accumulate_direct<A: CellAcc>(
        offsets: &[u32],
        cols: &[u32],
        bins: &[u8],
        lo: usize,
        hi: usize,
        gh: A::Gh,
        hp: *mut f64,
    ) {
        // SAFETY: per the contract above.
        unsafe {
            let mut k = lo;
            while k + 2 <= hi {
                let a = cell_at(offsets, cols, bins, k);
                let b = cell_at(offsets, cols, bins, k + 1);
                A::add2(hp, a, b, gh);
                k += 2;
            }
            if k < hi {
                A::add(hp, cell_at(offsets, cols, bins, k), gh);
            }
        }
    }

    // The chunked accumulate over one row slice `[lo, hi)`.
    //
    // SAFETY contract: `lo <= hi <= cols.len()`; paired cells belong to
    // strictly ascending columns, hence are distinct (add2 contract).
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    unsafe fn accumulate<A: CellAcc>(
        offsets: &[u32],
        cols: &[u32],
        bins: &[u8],
        lo: usize,
        hi: usize,
        gh: A::Gh,
        hp: *mut f64,
        cellbuf: &mut [usize; SPARSE_CHUNK],
    ) {
        // SAFETY: per the contract above.
        unsafe {
            let mut k = lo;
            while k < hi {
                let c = (hi - k).min(SPARSE_CHUNK);
                for (j, slot) in cellbuf[..c].iter_mut().enumerate() {
                    let cell = cell_at(offsets, cols, bins, k + j);
                    prefetch_read(hp.add(cell));
                    *slot = cell;
                }
                let mut j = 0usize;
                while j + 2 <= c {
                    A::add2(hp, *cellbuf.get_unchecked(j), *cellbuf.get_unchecked(j + 1), gh);
                    j += 2;
                }
                if j < c {
                    A::add(hp, *cellbuf.get_unchecked(j), gh);
                }
                k += c;
            }
        }
    }

    let span = offsets[f_range.end] - offsets[f_range.start];
    if span > SPARSE_PASS_BINS && n > 1 {
        // Cache-blocked passes. Each row keeps an absolute cursor into the
        // shared CSR entry arrays; feature blocks are visited in ascending
        // order, so every pass resumes a row where the previous pass
        // stopped and finds its end with a short linear walk over lines
        // the accumulate reads anyway — no per-pass binary searches. The
        // packed `(g, h)` pairs and per-row entry bounds are resolved once
        // up front so the per-(row, pass) loop is three sequential scratch
        // reads plus the walk.
        let (indptr, all_cols, all_bins) = qm.sparse_csr().expect("sparse storage");
        let mut cursor: Vec<usize> = Vec::with_capacity(n);
        let mut ends: Vec<usize> = Vec::with_capacity(n);
        let mut ghs: Vec<A::Gh> = Vec::with_capacity(n);
        for i in 0..n {
            let row = rows.get(i);
            let (s, e) = (indptr[row as usize], indptr[row as usize + 1]);
            let lo = if f_range.start == 0 {
                s
            } else {
                s + all_cols[s..e].partition_point(|&c| (c as usize) < f_range.start)
            };
            let end = if f_range.end == m {
                e
            } else {
                s + all_cols[s..e].partition_point(|&c| (c as usize) < f_range.end)
            };
            cursor.push(lo);
            ends.push(end);
            let [g, h] = grads.get(i, row);
            ghs.push(A::pack(g, h));
        }
        let mut fs = f_range.start;
        while fs < f_range.end {
            // Advance the block edge until its bin span would exceed the
            // pass budget (always at least one feature).
            let mut fe = fs + 1;
            while fe < f_range.end && offsets[fe + 1] - offsets[fs] <= SPARSE_PASS_BINS {
                fe += 1;
            }
            let fe_col = fe as u32;
            // SAFETY: i < n bounds the scratch reads; the walk keeps
            // k < end <= all_cols.len(); accumulate per its contract
            // (ascending columns within a row ⇒ distinct cells).
            unsafe {
                for i in 0..n {
                    let lo = *cursor.get_unchecked(i);
                    let end = *ends.get_unchecked(i);
                    let mut k = lo;
                    while k < end && *all_cols.get_unchecked(k) < fe_col {
                        k += 1;
                    }
                    accumulate_direct::<A>(
                        offsets,
                        all_cols,
                        all_bins,
                        lo,
                        k,
                        *ghs.get_unchecked(i),
                        hp,
                    );
                    *cursor.get_unchecked_mut(i) = k;
                    cells += (k - lo) as u64;
                }
            }
            fs = fe;
        }
        return cells;
    }

    let full = f_range.start == 0 && f_range.end == m;
    for i in 0..n {
        let row = rows.get(i);
        if i + 1 < n {
            grads.prefetch(i + 1, rows.get(i + 1));
        }
        let [g, h] = grads.get(i, row);
        let gh = A::pack(g, h);
        let (cols, bins) = qm.sparse_row(row as usize).expect("sparse storage");
        // Restrict to the feature block; row entries are sorted by column.
        let (lo, hi) = if full {
            (0, cols.len())
        } else {
            (
                cols.partition_point(|&c| (c as usize) < f_range.start),
                cols.partition_point(|&c| (c as usize) < f_range.end),
            )
        };
        // SAFETY: accumulate per its contract (lo <= hi <= cols.len() from
        // partition_point, ascending columns within a row).
        unsafe {
            accumulate::<A>(offsets, cols, bins, lo, hi, gh, hp, &mut cellbuf);
        }
        cells += (hi - lo) as u64;
    }
    cells
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sparse_row_scan_avx2<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    rows: R,
    grads: G,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    sparse_row_scan::<R, G, x86::Avx2Acc>(qm, rows, grads, f_range, hist)
}

/// The scalar row-scan reference: one `match` per gradient read, one
/// `bin_offset` call and one missing-bin branch per cell. Retained verbatim
/// so the specialized kernels have a bitwise ground truth (and the bench
/// runner a "before" measurement). Needs no sink padding. Handles every
/// storage layout through the slow accessors (a u4 pack rides on dense u8
/// storage, so the dense branch covers it).
pub fn row_scan_scalar(
    qm: &QuantizedMatrix,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    let mapper = qm.mapper();
    let mut cells = 0u64;
    if qm.is_dense() {
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            let bins = qm.dense_row(row as usize).expect("dense storage");
            for f in f_range.clone() {
                let b = bins[f];
                if b == MISSING_BIN {
                    continue;
                }
                let cell = (mapper.bin_offset(f) + u32::from(b)) as usize * 2;
                hist[cell] += f64::from(g);
                hist[cell + 1] += f64::from(h);
                cells += 1;
            }
        }
    } else if qm.is_bundled() {
        // Storage-column order, matching the specialized bundled body; a
        // cell is touched at most once per row, so per-cell accumulation
        // order is row-ascending either way.
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            qm.for_each_in_row(row as usize, |f, b| {
                let f = f as usize;
                if f_range.contains(&f) {
                    let cell = (mapper.bin_offset(f) + u32::from(b)) as usize * 2;
                    hist[cell] += f64::from(g);
                    hist[cell + 1] += f64::from(h);
                    cells += 1;
                }
            });
        }
    } else {
        let full = f_range.start == 0 && f_range.end == qm.n_features();
        for (i, &row) in rows.iter().enumerate() {
            let [g, h] = grads.get(i, row);
            let (cols, bins) = qm.sparse_row(row as usize).expect("sparse storage");
            let (lo, hi) = if full {
                (0, cols.len())
            } else {
                (
                    cols.partition_point(|&c| (c as usize) < f_range.start),
                    cols.partition_point(|&c| (c as usize) < f_range.end),
                )
            };
            for k in lo..hi {
                let f = cols[k] as usize;
                let cell = (mapper.bin_offset(f) + u32::from(bins[k])) as usize * 2;
                hist[cell] += f64::from(g);
                hist[cell + 1] += f64::from(h);
                cells += 1;
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Column scan
// ---------------------------------------------------------------------------

/// After this many linear probe steps, the sparse column merge-walk switches
/// to a `partition_point` gallop (skewed columns degrade the linear cursor
/// to O(nnz_col) per node otherwise).
const GALLOP_AFTER: usize = 16;

/// Accumulates feature `f` over `rows` into `hist_f` (that feature's bins
/// only: `n_bins * 2` lanes), restricted to bins in `bin_range`. Returns the
/// accumulation count. `f` is always an ORIGINAL feature id; bundled
/// storage resolves it to its synthetic column internally.
///
/// `rows` must be ascending (guaranteed by the stable partition). A
/// contiguous row set (detected: `last - first + 1 == len`, e.g. all rows,
/// or one side of a contiguous partition) takes a sequential fast path with
/// no per-row prefetch and, for sparse storage, a direct CSC span walk.
pub fn col_scan(
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    col_scan_forced_tier(simd_tier(), qm, f, rows, grads, bin_range, hist_f)
}

/// [`col_scan`] pinned to `tier` (clamped to the detected ceiling). Test
/// hook for the tier-equivalence suites.
#[doc(hidden)]
pub fn col_scan_forced_tier(
    tier: SimdTier,
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    let tier = tier.min(detected_tier());
    if rows.is_empty() {
        return 0;
    }
    let contig = (rows[rows.len() - 1] - rows[0]) as usize + 1 == rows.len();
    match grads {
        GradSource::MemBuf(m) => {
            assert!(m.len() >= rows.len(), "MemBuf shorter than the row set");
            if contig {
                let r = ContigRows { base: rows[0], len: rows.len() };
                col_scan_impl(qm, f, r, MemBufRead(m), bin_range, hist_f, tier)
            } else {
                col_scan_impl(qm, f, SliceRows(rows), MemBufRead(m), bin_range, hist_f, tier)
            }
        }
        GradSource::Global(g) => {
            if contig {
                let r = ContigRows { base: rows[0], len: rows.len() };
                col_scan_impl(qm, f, r, GlobalRead(g), bin_range, hist_f, tier)
            } else {
                col_scan_impl(qm, f, SliceRows(rows), GlobalRead(g), bin_range, hist_f, tier)
            }
        }
    }
}

fn col_scan_impl<R: RowSet, G: GradRead>(
    qm: &QuantizedMatrix,
    f: usize,
    rows: R,
    grads: G,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
    tier: SimdTier,
) -> u64 {
    // Column scans accumulate one cell per matching row — no provably
    // distinct pair to fold — so SSE2 is the widest useful tier.
    match tier {
        SimdTier::Scalar => {
            col_scan_body::<R, G, PortableAcc>(qm, f, rows, grads, bin_range, hist_f)
        }
        #[cfg(target_arch = "x86_64")]
        _ => col_scan_body::<R, G, x86::Sse2Acc>(qm, f, rows, grads, bin_range, hist_f),
        #[cfg(not(target_arch = "x86_64"))]
        _ => col_scan_body::<R, G, PortableAcc>(qm, f, rows, grads, bin_range, hist_f),
    }
}

fn col_scan_body<R: RowSet, G: GradRead, A: CellAcc>(
    qm: &QuantizedMatrix,
    f: usize,
    rows: R,
    grads: G,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    let n = rows.len();
    if n == 0 {
        return 0;
    }
    let n_bins = qm.mapper().n_bins(f) as usize;
    let full_bins = bin_range.start == 0 && bin_range.end >= n_bins;
    assert!(hist_f.len() >= n_bins * 2, "hist_f shorter than the feature's bins");
    let hp = hist_f.as_mut_ptr();
    let mut cells = 0u64;

    if let Some(pack) = qm.u4() {
        // Half the bin bytes of the u8 column. A nibble is valid iff it is
        // < n_bins(f): MISSING_NIBBLE (0xF) exceeds any packable width ≤ 15,
        // and a 16-bin feature only packs when its column has no missing.
        let pcol = pack.packed_col(f);
        if R::SEQUENTIAL {
            // Contiguous rows: each packed byte covers two consecutive
            // rows, so walk bytes and unpack both nibbles — half the loads
            // of the u8 column walk, all shifts constant.
            let base = rows.get(0) as usize;
            let end = base + n;
            if full_bins && pack.clean()[f] {
                // Missing-free column, whole bin range: every nibble is a
                // real in-range bin, so the walk is check-free.
                let mut row = base;
                if row & 1 == 1 {
                    let [g, h] = grads.get(0, row as u32);
                    // SAFETY: nibbles of a clean column are < n_bins.
                    unsafe { A::add(hp, usize::from(pcol[row >> 1] >> 4) * 2, A::pack(g, h)) };
                    row += 1;
                }
                while row + 2 <= end {
                    // SAFETY: row + 1 < end <= n_rows ⇒ row >> 1 <
                    // col_stride; clean nibbles are < n_bins.
                    unsafe {
                        let byte = *pcol.get_unchecked(row >> 1);
                        let [g, h] = grads.get(row - base, row as u32);
                        A::add(hp, usize::from(byte & 0xF) * 2, A::pack(g, h));
                        let [g, h] = grads.get(row + 1 - base, (row + 1) as u32);
                        A::add(hp, usize::from(byte >> 4) * 2, A::pack(g, h));
                    }
                    row += 2;
                }
                if row < end {
                    let [g, h] = grads.get(row - base, row as u32);
                    // SAFETY: as above.
                    unsafe { A::add(hp, usize::from(pcol[row >> 1] & 0xF) * 2, A::pack(g, h)) };
                }
                return n as u64;
            }
            let mut handle = |row: usize, nib: u8| {
                let b = nib as usize;
                if b < n_bins && (full_bins || bin_range.contains(&b)) {
                    let [g, h] = grads.get(row - base, row as u32);
                    // SAFETY: b < n_bins; buffer length asserted above.
                    unsafe { A::add(hp, b * 2, A::pack(g, h)) };
                    cells += 1;
                }
            };
            let mut row = base;
            if row & 1 == 1 {
                handle(row, pcol[row >> 1] >> 4);
                row += 1;
            }
            while row + 2 <= end {
                // SAFETY: row + 1 < end <= n_rows, so row >> 1 < col_stride.
                let byte = unsafe { *pcol.get_unchecked(row >> 1) };
                handle(row, byte & 0xF);
                handle(row + 1, byte >> 4);
                row += 2;
            }
            if row < end {
                handle(row, pcol[row >> 1] & 0xF);
            }
            return cells;
        }
        for i in 0..n {
            let row = rows.get(i) as usize;
            if i + PREFETCH_ROWS < n {
                prefetch_read(&pcol[rows.get(i + PREFETCH_ROWS) as usize >> 1]);
            }
            let b = ((pcol[row >> 1] >> ((row & 1) * 4)) & 0xF) as usize;
            if b >= n_bins {
                continue;
            }
            if !full_bins && !bin_range.contains(&b) {
                continue;
            }
            let [g, h] = grads.get(i, row as u32);
            // SAFETY: b < n_bins; buffer length asserted above.
            unsafe { A::add(hp, b * 2, A::pack(g, h)) };
            cells += 1;
        }
        return cells;
    }
    if let Some(col) = qm.dense_col(f) {
        for i in 0..n {
            let row = rows.get(i);
            if !R::SEQUENTIAL && i + PREFETCH_ROWS < n {
                prefetch_read(&col[rows.get(i + PREFETCH_ROWS) as usize]);
            }
            let b = col[row as usize];
            if b == MISSING_BIN {
                continue;
            }
            if !full_bins && !bin_range.contains(&(b as usize)) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            // SAFETY: b < n_bins (QuantizedMatrix invariant).
            unsafe { A::add(hp, usize::from(b) * 2, A::pack(g, h)) };
            cells += 1;
        }
        return cells;
    }
    if qm.is_bundled() {
        let slot = qm.mapper().bundles().expect("bundled storage has a map").slot(f);
        if slot.width == 0 {
            return 0;
        }
        let col = qm.bundled_col(slot.col as usize).expect("bundled storage");
        let (lo, hi) = (slot.offset, slot.offset + slot.width);
        for i in 0..n {
            let row = rows.get(i);
            if !R::SEQUENTIAL && i + PREFETCH_ROWS < n {
                prefetch_read(&col[rows.get(i + PREFETCH_ROWS) as usize]);
            }
            let b = u16::from(col[row as usize]);
            if b < lo || b >= hi {
                continue;
            }
            let local = usize::from(b - lo);
            if !full_bins && !bin_range.contains(&local) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            // SAFETY: local < slot.width == n_bins(f).
            unsafe { A::add(hp, local * 2, A::pack(g, h)) };
            cells += 1;
        }
        return cells;
    }
    // Sparse CSC.
    let (col_rows, col_bins) = qm.sparse_col(f).expect("sparse storage");
    if R::SEQUENTIAL {
        // Contiguous node rows: the matching entries are one CSC span —
        // walk it directly instead of merging row-by-row.
        let base = rows.get(0);
        let end = base + n as u32;
        let k0 = col_rows.partition_point(|&r| r < base);
        let k1 = k0 + col_rows[k0..].partition_point(|&r| r < end);
        for k in k0..k1 {
            let row = col_rows[k];
            let b = col_bins[k] as usize;
            if full_bins || bin_range.contains(&b) {
                let [g, h] = grads.get((row - base) as usize, row);
                // SAFETY: b < n_bins (QuantizedMatrix invariant).
                unsafe { A::add(hp, b * 2, A::pack(g, h)) };
                cells += 1;
            }
        }
        return cells;
    }
    // General row sets: merge-walk the CSC column (rows ascending) with the
    // node's rows (also ascending), galloping over long gaps.
    let mut k = 0usize;
    for i in 0..n {
        let row = rows.get(i);
        let mut steps = 0usize;
        while k < col_rows.len() && col_rows[k] < row {
            k += 1;
            steps += 1;
            if steps == GALLOP_AFTER {
                k += col_rows[k..].partition_point(|&r| r < row);
                break;
            }
        }
        if k == col_rows.len() {
            break;
        }
        if col_rows[k] == row {
            let b = col_bins[k];
            if full_bins || bin_range.contains(&(b as usize)) {
                let [g, h] = grads.get(i, row);
                // SAFETY: b < n_bins (QuantizedMatrix invariant).
                unsafe { A::add(hp, usize::from(b) * 2, A::pack(g, h)) };
                cells += 1;
            }
            k += 1;
        }
    }
    cells
}

/// The scalar column-scan reference (per-cell gradient `match`, linear
/// merge cursor); see [`row_scan_scalar`]. The dense branch covers
/// u4-packed matrices (the pack rides on dense u8 storage).
pub fn col_scan_scalar(
    qm: &QuantizedMatrix,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
) -> u64 {
    let mut cells = 0u64;
    let full_bins = bin_range.start == 0 && bin_range.end >= qm.mapper().n_bins(f) as usize;
    if let Some(col) = qm.dense_col(f) {
        for (i, &row) in rows.iter().enumerate() {
            let b = col[row as usize];
            if b == MISSING_BIN {
                continue;
            }
            if !full_bins && !bin_range.contains(&(b as usize)) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            let cell = usize::from(b) * 2;
            hist_f[cell] += f64::from(g);
            hist_f[cell + 1] += f64::from(h);
            cells += 1;
        }
    } else if qm.is_bundled() {
        let slot = qm.mapper().bundles().expect("bundled storage has a map").slot(f);
        if slot.width == 0 {
            return 0;
        }
        let col = qm.bundled_col(slot.col as usize).expect("bundled storage");
        let (lo, hi) = (slot.offset, slot.offset + slot.width);
        for (i, &row) in rows.iter().enumerate() {
            let b = u16::from(col[row as usize]);
            if b < lo || b >= hi {
                continue;
            }
            let local = usize::from(b - lo);
            if !full_bins && !bin_range.contains(&local) {
                continue;
            }
            let [g, h] = grads.get(i, row);
            hist_f[local * 2] += f64::from(g);
            hist_f[local * 2 + 1] += f64::from(h);
            cells += 1;
        }
    } else {
        let (col_rows, col_bins) = qm.sparse_col(f).expect("sparse storage");
        let mut k = 0usize;
        for (i, &row) in rows.iter().enumerate() {
            while k < col_rows.len() && col_rows[k] < row {
                k += 1;
            }
            if k == col_rows.len() {
                break;
            }
            if col_rows[k] == row {
                let b = col_bins[k];
                if full_bins || bin_range.contains(&(b as usize)) {
                    let [g, h] = grads.get(i, row);
                    let cell = usize::from(b) * 2;
                    hist_f[cell] += f64::from(g);
                    hist_f[cell + 1] += f64::from(h);
                    cells += 1;
                }
                k += 1;
            }
        }
    }
    cells
}

// ---------------------------------------------------------------------------
// Store-mediated scans (out-of-core chunk dispatch)
// ---------------------------------------------------------------------------

use harp_binning::QuantStore;

thread_local! {
    /// Scratch for chunk-local row ids, reused across store scans so the
    /// per-chunk translation allocates once per thread.
    static LOCAL_ROWS: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Splits an ascending global row list into per-chunk runs and invokes
/// `scan(chunk_idx, chunk_span, run_range)` for each, in ascending chunk
/// order. Issues a [`QuantStore::prefetch`] for the run *after* the one
/// about to be handed out, so the next chunk decodes while the current one
/// scans.
fn for_each_chunk_run(
    store: &dyn QuantStore,
    rows: &[u32],
    mut scan: impl FnMut(usize, Range<usize>, Range<usize>),
) {
    let mut i = 0usize;
    while i < rows.len() {
        let c = store.chunk_of_row(rows[i] as usize);
        let span = store.chunk_rows(c);
        let end = i + rows[i..].partition_point(|&r| (r as usize) < span.end);
        if end < rows.len() {
            store.prefetch(store.chunk_of_row(rows[end] as usize));
        }
        scan(c, span, i..end);
        i = end;
    }
}

/// Narrows a node gradient source to one chunk run: MemBuf replicas are
/// positional within the node, so the run's sub-slice stays position-aligned
/// with the chunk-local row list; the global array is row-id indexed, so
/// re-basing it at the chunk start makes chunk-local ids index correctly.
#[inline]
fn sub_grads<'a>(grads: GradSource<'a>, run: Range<usize>, chunk_start: usize) -> GradSource<'a> {
    match grads {
        GradSource::MemBuf(m) => GradSource::MemBuf(&m[run]),
        GradSource::Global(g) => GradSource::Global(&g[chunk_start..]),
    }
}

/// [`row_scan`] (or [`row_scan_scalar`] when `scalar`) through a
/// [`QuantStore`]: the in-memory store takes the exact pre-trait call; a
/// chunked store splits the ascending row list into per-chunk runs, pins
/// each slab, and scans runs in ascending chunk order — which preserves the
/// per-cell row-ascending `f64` accumulation order, so the result is
/// bitwise identical to a monolithic scan.
pub fn row_scan_store(
    store: &dyn QuantStore,
    rows: &[u32],
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
    scalar: bool,
) -> u64 {
    if let Some(qm) = store.as_single() {
        return if scalar {
            row_scan_scalar(qm, rows, grads, f_range, hist)
        } else {
            row_scan(qm, rows, grads, f_range, hist)
        };
    }
    let mut cells = 0u64;
    for_each_chunk_run(store, rows, |c, span, run| {
        let chunk = store.pin(c);
        let sub = sub_grads(grads, run.clone(), span.start);
        cells += LOCAL_ROWS.with(|lr| {
            let mut lr = lr.borrow_mut();
            lr.clear();
            lr.extend(rows[run].iter().map(|&r| r - span.start as u32));
            if scalar {
                row_scan_scalar(&chunk, &lr, sub, f_range.clone(), hist)
            } else {
                row_scan(&chunk, &lr, sub, f_range.clone(), hist)
            }
        });
    });
    cells
}

/// [`row_scan_root`] through a [`QuantStore`]: contiguous global rows map
/// to contiguous chunk-local rows, so each chunk run keeps the root fast
/// path (no row-id list at all). A `GradSource::MemBuf` slice must be
/// aligned to `row_range` exactly as in [`row_scan_root`].
pub fn row_scan_root_store(
    store: &dyn QuantStore,
    row_range: Range<usize>,
    grads: GradSource<'_>,
    f_range: Range<usize>,
    hist: &mut [f64],
) -> u64 {
    if let Some(qm) = store.as_single() {
        return row_scan_root(qm, row_range, grads, f_range, hist);
    }
    let mut cells = 0u64;
    let mut r = row_range.start;
    while r < row_range.end {
        let c = store.chunk_of_row(r);
        let span = store.chunk_rows(c);
        let hi = span.end.min(row_range.end);
        if hi < row_range.end {
            store.prefetch(store.chunk_of_row(hi));
        }
        let chunk = store.pin(c);
        let sub = match grads {
            GradSource::MemBuf(m) => GradSource::MemBuf(&m[r - row_range.start..]),
            GradSource::Global(g) => GradSource::Global(&g[span.start..]),
        };
        cells += row_scan_root(&chunk, r - span.start..hi - span.start, sub, f_range.clone(), hist);
        r = hi;
    }
    cells
}

/// [`col_scan`] (or [`col_scan_scalar`] when `scalar`) through a
/// [`QuantStore`]; same chunk-run decomposition and determinism argument as
/// [`row_scan_store`]. A contiguous node row set stays contiguous within
/// every chunk run, so the per-chunk scans keep the sequential fast paths.
pub fn col_scan_store(
    store: &dyn QuantStore,
    f: usize,
    rows: &[u32],
    grads: GradSource<'_>,
    bin_range: Range<usize>,
    hist_f: &mut [f64],
    scalar: bool,
) -> u64 {
    if let Some(qm) = store.as_single() {
        return if scalar {
            col_scan_scalar(qm, f, rows, grads, bin_range, hist_f)
        } else {
            col_scan(qm, f, rows, grads, bin_range, hist_f)
        };
    }
    let mut cells = 0u64;
    for_each_chunk_run(store, rows, |c, span, run| {
        let chunk = store.pin(c);
        let sub = sub_grads(grads, run.clone(), span.start);
        cells += LOCAL_ROWS.with(|lr| {
            let mut lr = lr.borrow_mut();
            lr.clear();
            lr.extend(rows[run].iter().map(|&r| r - span.start as u32));
            if scalar {
                col_scan_scalar(&chunk, f, &lr, sub, bin_range.clone(), hist_f)
            } else {
                col_scan(&chunk, f, &lr, sub, bin_range.clone(), hist_f)
            }
        });
    });
    cells
}

/// Estimated bytes moved per accumulation, for the memory-bound proxy:
/// 16 B GHSum read + 16 B write + 1 B bin + 8 B gradient.
pub const BYTES_PER_CELL: u64 = 41;

/// FLOPs per accumulation (one add each for g and h).
pub const FLOPS_PER_CELL: u64 = 2;

#[cfg(test)]
mod tests {
    use super::*;
    use harp_binning::{BinningConfig, LayoutOptions};
    use harp_data::{CsrMatrix, DenseMatrix, FeatureMatrix};

    fn dense_matrix() -> FeatureMatrix {
        // 6 rows x 3 features; feature 1 has two missing cells.
        FeatureMatrix::Dense(DenseMatrix::from_vec(
            6,
            3,
            vec![
                0.0,
                5.0,
                1.0, //
                1.0,
                f32::NAN,
                1.0, //
                2.0,
                6.0,
                0.0, //
                0.0,
                5.0,
                0.0, //
                1.0,
                f32::NAN,
                1.0, //
                2.0,
                7.0,
                0.0,
            ],
        ))
    }

    /// All features fit 16 bins, so the default layout attaches a u4 pack
    /// and `row_scan`/`col_scan` exercise the nibble paths.
    fn dense_qm() -> QuantizedMatrix {
        let qm = QuantizedMatrix::from_matrix(&dense_matrix(), BinningConfig::default());
        assert!(qm.u4().is_some(), "test fixture expects the u4 pack to engage");
        qm
    }

    /// The same matrix with compression off: the plain dense u8 kernels.
    fn dense_qm_u8() -> QuantizedMatrix {
        let qm = QuantizedMatrix::from_matrix_opts(
            &dense_matrix(),
            BinningConfig::default(),
            LayoutOptions::uncompressed(),
        );
        assert!(qm.u4().is_none());
        qm
    }

    fn sparse_qm() -> QuantizedMatrix {
        let m = FeatureMatrix::Sparse(CsrMatrix::from_rows(
            3,
            &[vec![(0, 1.0), (2, 4.0)], vec![(1, 2.0)], vec![(0, 2.0), (1, 3.0)], vec![(2, 5.0)]],
        ));
        let qm = QuantizedMatrix::from_matrix(&m, BinningConfig::default());
        assert!(!qm.is_bundled(), "3 features must stay plain sparse");
        qm
    }

    /// 32 rows × 16 one-hot-grouped features: bundling fuses each group of
    /// 4 mutually-exclusive features into one synthetic column.
    fn bundled_qm() -> QuantizedMatrix {
        let rows: Vec<Vec<(u32, f32)>> = (0..32)
            .map(|r| (0..4u32).map(|grp| (grp * 4 + (r + grp) % 4, (r % 3 + 1) as f32)).collect())
            .collect();
        let m = FeatureMatrix::Sparse(CsrMatrix::from_rows(16, &rows));
        let qm = QuantizedMatrix::from_matrix(&m, BinningConfig::default());
        assert!(qm.is_bundled(), "test fixture expects bundling to engage");
        qm
    }

    fn all_qms() -> Vec<QuantizedMatrix> {
        vec![dense_qm(), dense_qm_u8(), sparse_qm(), bundled_qm()]
    }

    fn grads(n: usize) -> Vec<GradPair> {
        (0..n).map(|i| [1.0 + i as f32, 0.5]).collect()
    }

    /// Padded buffer: real cells plus the per-feature sinks.
    fn hist_for(qm: &QuantizedMatrix) -> Vec<f64> {
        vec![0.0; qm.mapper().total_bins() as usize * 2 + sink_lanes(qm.n_features())]
    }

    /// Reference accumulation via the slow accessor (padded, sinks zero).
    fn reference(
        qm: &QuantizedMatrix,
        rows: &[u32],
        g: &[GradPair],
        f_range: Range<usize>,
    ) -> Vec<f64> {
        let mut hist = hist_for(qm);
        for &row in rows {
            for f in f_range.clone() {
                if let Some(b) = qm.bin(row as usize, f) {
                    let cell = (qm.mapper().bin_offset(f) + u32::from(b)) as usize * 2;
                    hist[cell] += f64::from(g[row as usize][0]);
                    hist[cell + 1] += f64::from(g[row as usize][1]);
                }
            }
        }
        hist
    }

    #[test]
    fn row_scan_dense_matches_reference() {
        for qm in [dense_qm(), dense_qm_u8()] {
            let g = grads(6);
            let rows: Vec<u32> = vec![0, 2, 3, 5];
            let mut hist = hist_for(&qm);
            let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
            assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
            assert_eq!(cells, 12); // 4 rows x 3 features, none missing for these rows
        }
    }

    #[test]
    fn row_scan_skips_missing() {
        for qm in [dense_qm(), dense_qm_u8()] {
            let g = grads(6);
            let rows: Vec<u32> = vec![1, 4]; // rows with a missing feature-1 cell
            let mut hist = hist_for(&qm);
            let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
            assert_eq!(cells, 4);
            assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
        }
    }

    #[test]
    fn row_scan_strips_sink_cells() {
        for qm in [dense_qm(), dense_qm_u8()] {
            let g = grads(6);
            let rows: Vec<u32> = (0..6).collect();
            let mut hist = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
            let total = qm.mapper().total_bins() as usize;
            assert!(hist[total * 2..].iter().all(|&x| x == 0.0), "sinks must leave zeroed");
        }
    }

    #[test]
    fn row_scan_feature_block_restricts_columns() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut hist = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 1..2, &mut hist);
            assert_eq!(hist, reference(&qm, &rows, &g, 1..2));
            // Feature 0's cells untouched.
            let f0_cells = qm.mapper().n_bins(0) as usize * 2;
            assert!(hist[..f0_cells].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn row_scan_membuf_matches_global() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let m = qm.n_features();
            let rows: Vec<u32> = vec![(n - 1) as u32, 0, 3]; // arbitrary subset, any order
            let membuf: Vec<GradPair> = rows.iter().map(|&r| g[r as usize]).collect();
            let mut h1 = hist_for(&qm);
            let mut h2 = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..m, &mut h1);
            row_scan(&qm, &rows, GradSource::MemBuf(&membuf), 0..m, &mut h2);
            assert_eq!(h1, h2);
        }
    }

    #[test]
    fn row_scan_root_matches_slice_scan() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let m = qm.n_features();
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut by_slice = hist_for(&qm);
            let mut by_range = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..m, &mut by_slice);
            row_scan_root(&qm, 0..n, GradSource::Global(&g), 0..m, &mut by_range);
            assert_eq!(by_slice, by_range);
            // MemBuf at the root: position == row id.
            let mut by_membuf = hist_for(&qm);
            row_scan_root(&qm, 0..n, GradSource::MemBuf(&g), 0..m, &mut by_membuf);
            assert_eq!(by_slice, by_membuf);
            // A strict sub-range too.
            let mut sub_slice = hist_for(&qm);
            let mut sub_range = hist_for(&qm);
            row_scan(&qm, &rows[1..n], GradSource::Global(&g), 0..m, &mut sub_slice);
            row_scan_root(&qm, 1..n, GradSource::Global(&g), 0..m, &mut sub_range);
            assert_eq!(sub_slice, sub_range);
        }
    }

    #[test]
    fn row_scan_matches_scalar_bitwise() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let m = qm.n_features();
            for f_range in [0..m, 1..m, 0..1] {
                let rows: Vec<u32> = (0..n as u32).collect();
                let mut fast = hist_for(&qm);
                let mut scalar = hist_for(&qm);
                let cf = row_scan(&qm, &rows, GradSource::Global(&g), f_range.clone(), &mut fast);
                let cs = row_scan_scalar(&qm, &rows, GradSource::Global(&g), f_range, &mut scalar);
                assert_eq!(cf, cs);
                assert_eq!(fast, scalar);
            }
        }
    }

    #[test]
    fn row_scan_all_tiers_match_scalar_bitwise() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let m = qm.n_features();
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut scalar = hist_for(&qm);
            row_scan_scalar(&qm, &rows, GradSource::Global(&g), 0..m, &mut scalar);
            for tier in [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
                let mut fast = hist_for(&qm);
                row_scan_forced_tier(tier, &qm, &rows, GradSource::Global(&g), 0..m, &mut fast);
                assert_eq!(fast, scalar, "tier {} differs", tier.name());
            }
        }
    }

    #[test]
    fn row_scan_sparse_matches_reference() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![0, 1, 2, 3];
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..3, &mut hist);
        assert_eq!(cells, 6);
        assert_eq!(hist, reference(&qm, &rows, &g, 0..3));
    }

    #[test]
    fn row_scan_sparse_feature_block() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![0, 2, 3];
        let mut hist = hist_for(&qm);
        row_scan(&qm, &rows, GradSource::Global(&g), 1..3, &mut hist);
        assert_eq!(hist, reference(&qm, &rows, &g, 1..3));
    }

    #[test]
    fn row_scan_bundled_matches_reference_and_counts() {
        let qm = bundled_qm();
        let n = qm.n_rows();
        let g = grads(n);
        let rows: Vec<u32> = (0..n as u32).collect();
        let mut hist = hist_for(&qm);
        let cells = row_scan(&qm, &rows, GradSource::Global(&g), 0..16, &mut hist);
        assert_eq!(cells, 32 * 4, "one present feature per group per row");
        assert_eq!(hist, reference(&qm, &rows, &g, 0..16));
    }

    #[test]
    fn col_scan_matches_row_scan_per_feature() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let rows: Vec<u32> = (0..n as u32).collect();
            let mut full = hist_for(&qm);
            row_scan(&qm, &rows, GradSource::Global(&g), 0..qm.n_features(), &mut full);
            for f in 0..qm.n_features() {
                let n_bins = qm.mapper().n_bins(f) as usize;
                let mut hist_f = vec![0.0; n_bins * 2];
                col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut hist_f);
                let base = qm.mapper().bin_offset(f) as usize * 2;
                assert_eq!(&full[base..base + n_bins * 2], &hist_f[..], "feature {f}");
                let mut scalar_f = vec![0.0; n_bins * 2];
                col_scan_scalar(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut scalar_f);
                assert_eq!(hist_f, scalar_f, "feature {f} scalar col_scan");
            }
        }
    }

    #[test]
    fn col_scan_subset_rows_all_layouts() {
        // A non-contiguous ascending subset: the merge/indirect paths.
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let rows: Vec<u32> = (0..n as u32).filter(|r| r % 3 != 1).collect();
            for f in 0..qm.n_features() {
                let n_bins = qm.mapper().n_bins(f) as usize;
                if n_bins == 0 {
                    continue;
                }
                let mut fast = vec![0.0; n_bins * 2];
                let mut scalar = vec![0.0; n_bins * 2];
                let cf = col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut fast);
                let cs =
                    col_scan_scalar(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut scalar);
                assert_eq!(cf, cs, "feature {f} cell count");
                assert_eq!(fast, scalar, "feature {f}");
            }
        }
    }

    #[test]
    fn col_scan_bin_block_restricts_bins() {
        for qm in [dense_qm(), dense_qm_u8()] {
            let g = grads(6);
            let rows: Vec<u32> = (0..6).collect();
            let f = 0;
            let n_bins = qm.mapper().n_bins(f) as usize;
            assert!(n_bins >= 3);
            let mut blocked = vec![0.0; n_bins * 2];
            col_scan(&qm, f, &rows, GradSource::Global(&g), 0..1, &mut blocked);
            let mut full = vec![0.0; n_bins * 2];
            col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut full);
            assert_eq!(&blocked[..2], &full[..2]);
            assert!(blocked[2..].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn col_scan_subset_rows_sparse() {
        let qm = sparse_qm();
        let g = grads(4);
        let rows: Vec<u32> = vec![1, 2]; // subset; ascending
        for f in 0..3 {
            let n_bins = qm.mapper().n_bins(f) as usize;
            if n_bins == 0 {
                continue;
            }
            let mut hist_f = vec![0.0; n_bins * 2];
            col_scan(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut hist_f);
            let reference_full = reference(&qm, &rows, &g, f..f + 1);
            let base = qm.mapper().bin_offset(f) as usize * 2;
            assert_eq!(&reference_full[base..base + n_bins * 2], &hist_f[..], "feature {f}");
        }
    }

    #[test]
    fn col_scan_gallops_over_skewed_column() {
        // One hot column where the node's rows all sit past a long dense
        // prefix: the gallop must skip the prefix, and the result must match
        // the linear-cursor scalar walk exactly. Rows are offset-contiguous
        // here, so also check a truly scattered subset (gallop path).
        let n = 2000usize;
        let rows_data: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|r| {
                let mut entries = vec![(0u32, (r % 7) as f32)];
                if r >= n - 5 {
                    entries.push((1, 1.0));
                }
                entries
            })
            .collect();
        let m = FeatureMatrix::Sparse(CsrMatrix::from_rows(2, &rows_data));
        let qm = QuantizedMatrix::from_matrix(&m, BinningConfig::default());
        let g = grads(n);
        let tail: Vec<u32> = ((n - 8) as u32..n as u32).collect();
        let scattered: Vec<u32> =
            (0..n as u32).filter(|r| r % 97 == 3 || *r >= (n - 5) as u32).collect();
        for rows in [&tail, &scattered] {
            for f in 0..2 {
                let n_bins = qm.mapper().n_bins(f) as usize;
                let mut fast = vec![0.0; n_bins * 2];
                let mut scalar = vec![0.0; n_bins * 2];
                let cf = col_scan(&qm, f, rows, GradSource::Global(&g), 0..n_bins, &mut fast);
                let cs =
                    col_scan_scalar(&qm, f, rows, GradSource::Global(&g), 0..n_bins, &mut scalar);
                assert_eq!(cf, cs, "feature {f} cell count");
                assert_eq!(fast, scalar, "feature {f}");
            }
        }
    }

    #[test]
    fn col_scan_all_tiers_match_scalar_bitwise() {
        for qm in all_qms() {
            let n = qm.n_rows();
            let g = grads(n);
            let rows: Vec<u32> = (0..n as u32).collect();
            for f in 0..qm.n_features() {
                let n_bins = qm.mapper().n_bins(f) as usize;
                let mut scalar = vec![0.0; n_bins * 2];
                col_scan_scalar(&qm, f, &rows, GradSource::Global(&g), 0..n_bins, &mut scalar);
                for tier in [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2] {
                    let mut fast = vec![0.0; n_bins * 2];
                    col_scan_forced_tier(
                        tier,
                        &qm,
                        f,
                        &rows,
                        GradSource::Global(&g),
                        0..n_bins,
                        &mut fast,
                    );
                    assert_eq!(fast, scalar, "feature {f} tier {}", tier.name());
                }
            }
        }
    }

    #[test]
    fn simd_tier_is_clamped_and_named() {
        let t = simd_tier();
        assert!(t <= detected_tier());
        assert!(["scalar", "sse2", "avx2"].contains(&t.name()));
        assert_eq!(SimdTier::Scalar.as_u64(), 0);
        assert_eq!(SimdTier::Avx2.as_u64(), 2);
    }

    #[test]
    fn grad_source_select_prefers_membuf() {
        let g = grads(2);
        let mb = grads(1);
        assert!(matches!(GradSource::select(&mb, &g), GradSource::MemBuf(_)));
        assert!(matches!(GradSource::select(&[], &g), GradSource::Global(_)));
    }
}
