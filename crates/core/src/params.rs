//! Training hyper-parameters and the system parameters of Table IV.

use serde::{Deserialize, Serialize};

/// Tree growth method (§II-A, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthMethod {
    /// Split leaves level by level; `k = 0` splits a whole level at once
    /// (classic depthwise), `k > 0` selects K leaves at a time, building the
    /// same tree (§IV-B, Fig. 6a).
    Depthwise,
    /// Split the leaves with the largest loss change; `k = 1` is classic
    /// leafwise, `k > 1` is the paper's TopK method (Fig. 6d).
    Leafwise,
}

/// Parallel mode (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ParallelMode {
    /// Data parallelism: row blocks, per-thread model replicas, reduction.
    DataParallel,
    /// Model parallelism: (node, feature, bin) blocks with exclusive writes.
    ModelParallel,
    /// Mixed (DP, MP, DP): DP while few candidates, MP in the middle, DP at
    /// the end when nodes are tiny.
    Sync,
    /// Mixed (X, node parallelism, X): DP while few candidates, then
    /// node-level tasks on a shared priority queue with no barriers.
    Async,
}

pub use crate::objective::ObjectiveSpec;

/// The historical name of [`ObjectiveSpec`]. The loss layer is now the open
/// [`crate::objective`] registry; this alias keeps every existing
/// `LossKind::Logistic`-style construction and pattern site compiling (and
/// the serialized field name `loss` unchanged).
pub type LossKind = ObjectiveSpec;

/// Block-size system parameters (Table IV). `0` means "all" (the paper's
/// convention for unlimited block extent); [`BlockConfig::Auto`] defers the
/// choice to the per-batch cost model in [`crate::plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockConfig {
    /// Rows per data-parallel task; `0` derives `N / n_threads`.
    pub row_blk_size: usize,
    /// Tree-node candidates fused into one task; `0` means all in the batch.
    pub node_blk_size: usize,
    /// Features per task; `0` means all features.
    pub feature_blk_size: usize,
    /// Bins per model-parallel task; `0` (or ≥ max bins) disables bin
    /// blocking, the setting used throughout the paper's experiments.
    pub bin_blk_size: usize,
}

impl Default for BlockConfig {
    fn default() -> Self {
        Self { row_blk_size: 0, node_blk_size: 1, feature_blk_size: 0, bin_blk_size: 0 }
    }
}

impl BlockConfig {
    /// Sentinel extent marking an auto-tuned field. Deliberately `2^53` —
    /// the largest integer the JSON number representation round-trips
    /// exactly — so a serialized `Auto` config survives model save/load
    /// (`usize::MAX` would come back off by one and stop comparing equal).
    pub const AUTO_EXTENT: usize = 1 << 53;

    /// Defer block sizing to the per-batch cost model
    /// ([`crate::plan::auto_config`]): working-set-vs-L2 fit, task count
    /// versus thread count, and redundant-read volume pick the extents for
    /// every BuildHist batch.
    ///
    /// A `const` rather than an enum variant so explicit configs keep their
    /// exhaustive-struct-literal construction sites unchanged.
    #[allow(non_upper_case_globals)]
    pub const Auto: BlockConfig = BlockConfig {
        row_blk_size: Self::AUTO_EXTENT,
        node_blk_size: Self::AUTO_EXTENT,
        feature_blk_size: Self::AUTO_EXTENT,
        bin_blk_size: Self::AUTO_EXTENT,
    };

    /// Is this the auto-tuned configuration?
    pub fn is_auto(&self) -> bool {
        *self == Self::Auto
    }

    /// Validates an explicit configuration.
    ///
    /// The `0 = unlimited` sentinel is always legal — including
    /// `node_blk_size = 0` under model parallelism, which is exactly the
    /// XGB-Approx vertical-plane preset (all nodes of the batch fused into
    /// one task group, see `harp-baselines`). Rejected instead are configs
    /// that are degenerate under every dataset:
    ///
    /// * a `bin_blk_size` beyond the 256-bin quantization ceiling (bins are
    ///   `u8`; such a block can never split anything — use `0` to disable
    ///   bin blocking);
    /// * extents at or beyond [`Self::AUTO_EXTENT`] unless *all four* carry
    ///   the sentinel (a partially-auto config is a construction bug, and
    ///   larger extents would not survive JSON serialization).
    ///
    /// # Errors
    /// Returns a message describing the first degenerate field.
    pub fn validate(&self) -> Result<(), String> {
        if self.is_auto() {
            return Ok(());
        }
        let fields = [
            ("row_blk_size", self.row_blk_size),
            ("node_blk_size", self.node_blk_size),
            ("feature_blk_size", self.feature_blk_size),
            ("bin_blk_size", self.bin_blk_size),
        ];
        for (name, v) in fields {
            if v == Self::AUTO_EXTENT {
                return Err(format!(
                    "{name} carries the auto sentinel but the other block extents are \
                     explicit; use BlockConfig::Auto to auto-tune all four"
                ));
            }
            if v > Self::AUTO_EXTENT {
                return Err(format!(
                    "{name} = {v} exceeds the largest representable block extent \
                     ({}); use 0 for an unlimited block",
                    Self::AUTO_EXTENT
                ));
            }
        }
        if self.bin_blk_size > 256 {
            return Err(format!(
                "bin_blk_size = {} exceeds the 256-bin quantization ceiling, so it can \
                 never block anything; use 0 to disable bin blocking",
                self.bin_blk_size
            ));
        }
        Ok(())
    }

    /// Resolves `row_blk_size` for a dataset of `n` rows on `t` threads.
    pub fn rows_per_block(&self, n: usize, t: usize) -> usize {
        if self.row_blk_size > 0 {
            self.row_blk_size
        } else {
            (n / t).max(1)
        }
    }

    /// Resolves `node_blk_size` for a batch of `batch` nodes.
    pub fn nodes_per_block(&self, batch: usize) -> usize {
        if self.node_blk_size > 0 {
            self.node_blk_size.min(batch.max(1))
        } else {
            batch.max(1)
        }
    }

    /// Resolves `feature_blk_size` for `m` features.
    pub fn features_per_block(&self, m: usize) -> usize {
        if self.feature_blk_size > 0 {
            self.feature_blk_size.min(m.max(1))
        } else {
            m.max(1)
        }
    }

    /// Resolves `bin_blk_size` for a feature with `b` bins.
    pub fn bins_per_block(&self, b: usize) -> usize {
        if self.bin_blk_size > 0 {
            self.bin_blk_size.min(b.max(1))
        } else {
            b.max(1)
        }
    }
}

/// Span-ledger tracing configuration (see `harp_parallel::trace`).
///
/// Off by default: training then performs no extra clock reads and the
/// diagnostics carry no snapshot. When enabled, every worker (plus the
/// coordinator) records phase spans into a fixed `spans_per_worker` ring —
/// drop-oldest, so long runs keep the newest window — and the trainer
/// attaches a [`harp_parallel::TraceSnapshot`] plus a per-phase worker-skew
/// table to its diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TraceConfig {
    /// Record spans and counters during training.
    pub enabled: bool,
    /// Ring capacity per worker lane, in spans (rounded up to a power of
    /// two by the sink).
    pub spans_per_worker: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { enabled: false, spans_per_worker: 1 << 14 }
    }
}

impl TraceConfig {
    /// Convenience constructor for an enabled default-capacity config.
    pub fn enabled() -> Self {
        Self { enabled: true, ..Self::default() }
    }
}

// Manual impl (not derived) so models serialized before this field existed
// still deserialize: a missing `trace` object falls back to the default.
impl serde::Deserialize for TraceConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_obj().ok_or_else(|| serde::Error::new("expected trace config object"))?;
        Ok(Self {
            enabled: serde::field(obj, "enabled")?,
            spans_per_worker: serde::field(obj, "spans_per_worker")?,
        })
    }

    fn missing() -> Option<Self> {
        Some(Self::default())
    }
}

/// Run-ledger configuration (see `harp_metrics::RunLedger`).
///
/// Off by default. When enabled, the trainer snapshots phase-time deltas,
/// profile-counter deltas, the eval metric, tree shape, worker skew, and
/// memory-gauge bytes once per boosting round, and the diagnostics carry a
/// [`harp_metrics::RunLedger`] ready to stream as JSON-lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct LedgerConfig {
    /// Record one ledger entry per boosting round.
    pub enabled: bool,
}

impl LedgerConfig {
    /// Convenience constructor for an enabled config.
    pub fn enabled() -> Self {
        Self { enabled: true }
    }
}

// Manual impl (not derived) so models serialized before this field existed
// still deserialize: a missing `ledger` object falls back to the default.
impl serde::Deserialize for LedgerConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let obj = v.as_obj().ok_or_else(|| serde::Error::new("expected ledger config object"))?;
        Ok(Self { enabled: serde::field(obj, "enabled")? })
    }

    fn missing() -> Option<Self> {
        Some(Self::default())
    }
}

/// Full training configuration.
///
/// Defaults follow §V-A4: `learning_rate = 0.1`, `γ = 1.0`, `λ = 1.0`,
/// `min_child_weight = 1`, logistic loss, 100 trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainParams {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Shrinkage applied to leaf weights.
    pub learning_rate: f32,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum loss reduction γ to make a split.
    pub gamma: f64,
    /// Minimum hessian sum in a child.
    pub min_child_weight: f64,
    /// Cap on the magnitude of the unscaled Newton leaf step `|w*|`; `0`
    /// disables. Log-link objectives (Tweedie) need this: a pure-zero leaf
    /// has its optimum at `-∞`, and uncapped boosting walks there round
    /// after round, blowing up held-out deviance. XGBoost recommends ~0.7
    /// for such objectives.
    pub max_delta_step: f64,
    /// Tree size `D`: depthwise depth limit `D` (root = depth 0) and leaf
    /// budget `2^D` (see DESIGN.md §6 on the paper's convention).
    pub tree_size: u32,
    /// Growth method.
    pub growth: GrowthMethod,
    /// TopK candidate count; `0` = unlimited (depthwise default), leafwise
    /// default is 1.
    pub k: usize,
    /// Parallel mode.
    pub mode: ParallelMode,
    /// Block-size system parameters.
    pub blocks: BlockConfig,
    /// Worker threads.
    pub n_threads: usize,
    /// Loss function.
    pub loss: LossKind,
    /// Keep gradient replicas next to row ids (§IV-E MemBuf). Off only for
    /// the ablation in Table V.
    pub use_membuf: bool,
    /// Use the parent − sibling histogram subtraction trick when the parent
    /// histogram is cached. Changes floating-point association, so the
    /// determinism tests disable it.
    pub hist_subtraction: bool,
    /// Byte budget for cached candidate histograms (leafwise growth can hold
    /// thousands of candidates; the pool evicts lowest-gain first).
    pub hist_cache_bytes: usize,
    /// Use a static task schedule in data-parallel reductions so results are
    /// bitwise reproducible run-to-run.
    pub deterministic: bool,
    /// Force the scalar reference BuildHist kernels instead of the
    /// specialized (unrolled, offset-table, sink-cell) ones. A/B lever for
    /// the bench runner and the kernel-equivalence tests; both paths produce
    /// bitwise identical histograms.
    pub use_scalar_kernels: bool,
    /// Per-tree row subsampling rate in `(0, 1]` (stochastic gradient
    /// boosting). Excluded rows get zero gradient mass for that tree; `1.0`
    /// disables sampling, as in all paper experiments (§V-A4 excludes
    /// sampling to keep workloads comparable).
    pub subsample: f32,
    /// Per-tree feature subsampling rate in `(0, 1]`; sampled-out features
    /// are skipped by FindSplit. `1.0` disables.
    pub colsample_bytree: f32,
    /// Seed for the subsampling RNG (training itself is deterministic).
    pub seed: u64,
    /// Span-ledger tracing (disabled by default; zero-cost when off).
    pub trace: TraceConfig,
    /// Per-round run ledger (disabled by default).
    pub ledger: LedgerConfig,
}

impl Default for TrainParams {
    fn default() -> Self {
        Self {
            n_trees: 100,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 1.0,
            min_child_weight: 1.0,
            max_delta_step: 0.0,
            tree_size: 8,
            growth: GrowthMethod::Leafwise,
            k: 1,
            mode: ParallelMode::DataParallel,
            blocks: BlockConfig::default(),
            n_threads: harp_parallel::current_num_threads_hint(),
            loss: LossKind::Logistic,
            use_membuf: true,
            hist_subtraction: true,
            hist_cache_bytes: 512 << 20,
            deterministic: true,
            use_scalar_kernels: false,
            subsample: 1.0,
            colsample_bytree: 1.0,
            seed: 0,
            trace: TraceConfig::default(),
            ledger: LedgerConfig::default(),
        }
    }
}

impl TrainParams {
    /// Maximum number of leaves for this tree size (`2^D`).
    pub fn max_leaves(&self) -> usize {
        1usize << self.tree_size.min(31)
    }

    /// Maximum node depth (root = 0).
    pub fn max_depth(&self) -> u32 {
        match self.growth {
            GrowthMethod::Depthwise => self.tree_size,
            // Leafwise trees may grow deep (the paper sees CRITEO trees
            // deeper than 150); only the leaf budget limits them, plus a
            // generous safety rail.
            GrowthMethod::Leafwise => u32::MAX,
        }
    }

    /// Effective K: how many candidates are popped per growth step.
    pub fn effective_k(&self) -> usize {
        if self.k == 0 {
            usize::MAX
        } else {
            self.k
        }
    }

    /// Validates parameter consistency.
    ///
    /// # Errors
    /// Returns a message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_trees == 0 {
            return Err("n_trees must be positive".into());
        }
        if self.learning_rate <= 0.0 || self.learning_rate.is_nan() {
            return Err("learning_rate must be positive".into());
        }
        if self.lambda < 0.0 || self.gamma < 0.0 || self.min_child_weight < 0.0 {
            return Err("regularizers must be non-negative".into());
        }
        if !(self.max_delta_step >= 0.0 && self.max_delta_step.is_finite()) {
            return Err("max_delta_step must be finite and non-negative (0 disables)".into());
        }
        if self.tree_size == 0 || self.tree_size > 24 {
            return Err("tree_size must be in 1..=24".into());
        }
        if self.n_threads == 0 {
            return Err("n_threads must be positive".into());
        }
        for (name, v) in
            [("subsample", self.subsample), ("colsample_bytree", self.colsample_bytree)]
        {
            if !(v > 0.0 && v <= 1.0) {
                return Err(format!("{name} must be in (0, 1]"));
            }
        }
        self.loss.validate()?;
        self.blocks.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let p = TrainParams::default();
        assert_eq!(p.learning_rate, 0.1);
        assert_eq!(p.lambda, 1.0);
        assert_eq!(p.gamma, 1.0);
        assert_eq!(p.min_child_weight, 1.0);
        assert_eq!(p.n_trees, 100);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn max_leaves_is_two_to_the_d() {
        let p = TrainParams { tree_size: 8, ..Default::default() };
        assert_eq!(p.max_leaves(), 256);
        let p = TrainParams { tree_size: 12, ..Default::default() };
        assert_eq!(p.max_leaves(), 4096);
    }

    #[test]
    fn max_delta_step_must_be_finite_and_non_negative() {
        let ok = TrainParams { max_delta_step: 0.7, ..Default::default() };
        assert!(ok.validate().is_ok());
        for bad in [-0.1, f64::NAN, f64::INFINITY] {
            let p = TrainParams { max_delta_step: bad, ..Default::default() };
            assert!(p.validate().is_err(), "max_delta_step {bad} must be rejected");
        }
    }

    #[test]
    fn effective_k_zero_is_unlimited() {
        let p = TrainParams { k: 0, ..Default::default() };
        assert_eq!(p.effective_k(), usize::MAX);
        let p = TrainParams { k: 32, ..Default::default() };
        assert_eq!(p.effective_k(), 32);
    }

    #[test]
    fn block_resolution() {
        let b = BlockConfig {
            row_blk_size: 0,
            node_blk_size: 4,
            feature_blk_size: 16,
            bin_blk_size: 0,
        };
        assert_eq!(b.rows_per_block(1000, 8), 125);
        assert_eq!(b.nodes_per_block(32), 4);
        assert_eq!(b.nodes_per_block(2), 2);
        assert_eq!(b.features_per_block(8), 8);
        assert_eq!(b.bins_per_block(255), 255);
        let all = BlockConfig {
            row_blk_size: 64,
            node_blk_size: 0,
            feature_blk_size: 0,
            bin_blk_size: 32,
        };
        assert_eq!(all.rows_per_block(1000, 8), 64);
        assert_eq!(all.nodes_per_block(5), 5);
        assert_eq!(all.features_per_block(128), 128);
        assert_eq!(all.bins_per_block(255), 32);
    }

    #[test]
    fn auto_sentinel_roundtrips_and_validates() {
        let auto = BlockConfig::Auto;
        assert!(auto.is_auto());
        assert!(auto.validate().is_ok());
        assert!(!BlockConfig::default().is_auto());
        // The sentinel must survive the JSON model format exactly.
        let text = serde_json::to_string(&auto).expect("serialize");
        let back: BlockConfig = serde_json::from_str(&text).expect("parse");
        assert!(back.is_auto(), "auto sentinel corrupted by JSON round-trip");
        let p = TrainParams { blocks: BlockConfig::Auto, ..Default::default() };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn zero_sentinel_configs_are_accepted() {
        // `0 = unlimited` everywhere, including node_blk = 0 (the
        // XGB-Approx vertical plane under MP) — documented legal.
        let all_zero =
            BlockConfig { row_blk_size: 0, node_blk_size: 0, feature_blk_size: 0, bin_blk_size: 0 };
        assert!(all_zero.validate().is_ok());
        let p = TrainParams {
            blocks: all_zero,
            mode: ParallelMode::ModelParallel,
            ..Default::default()
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn degenerate_block_configs_are_rejected() {
        // Over-ceiling bin block: bins are u8, so > 256 can never block.
        let b = BlockConfig { bin_blk_size: 300, ..Default::default() };
        let err = b.validate().unwrap_err();
        assert!(err.contains("bin_blk_size") && err.contains("256"), "got: {err}");
        // Partially-auto configs are construction bugs, not requests.
        let partial =
            BlockConfig { feature_blk_size: BlockConfig::AUTO_EXTENT, ..Default::default() };
        let err = partial.validate().unwrap_err();
        assert!(err.contains("auto sentinel"), "got: {err}");
        // Extents beyond the sentinel would not survive serialization.
        let huge = BlockConfig { row_blk_size: usize::MAX, ..Default::default() };
        let err = huge.validate().unwrap_err();
        assert!(err.contains("row_blk_size"), "got: {err}");
        // And TrainParams::validate surfaces all of it at build time.
        let p = TrainParams { blocks: b, ..Default::default() };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_fields() {
        for (mutator, msg) in [
            (
                Box::new(|p: &mut TrainParams| p.n_trees = 0) as Box<dyn Fn(&mut TrainParams)>,
                "n_trees",
            ),
            (Box::new(|p: &mut TrainParams| p.tree_size = 0), "tree_size"),
            (Box::new(|p: &mut TrainParams| p.n_threads = 0), "n_threads"),
            (Box::new(|p: &mut TrainParams| p.lambda = -1.0), "regularizers"),
            (Box::new(|p: &mut TrainParams| p.learning_rate = 0.0), "learning_rate"),
        ] {
            let mut p = TrainParams::default();
            mutator(&mut p);
            let err = p.validate().unwrap_err();
            assert!(err.contains(msg), "expected {msg} in {err}");
        }
    }

    #[test]
    fn depthwise_depth_limit_vs_leafwise() {
        let d = TrainParams { growth: GrowthMethod::Depthwise, tree_size: 6, ..Default::default() };
        assert_eq!(d.max_depth(), 6);
        let l = TrainParams { growth: GrowthMethod::Leafwise, tree_size: 6, ..Default::default() };
        assert_eq!(l.max_depth(), u32::MAX);
    }
}
