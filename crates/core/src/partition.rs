//! ApplySplit: row-to-node membership (the paper's NodeMap) and MemBuf.
//!
//! Rows are kept as one permutation buffer grouped by node: each node owns a
//! contiguous span, and splitting a node stably partitions its span into the
//! left child's rows followed by the right child's. Stability matters: row
//! ids stay ascending inside every node, which (a) preserves input locality
//! and (b) makes histogram accumulation order — and therefore the whole
//! training run — deterministic (DESIGN.md §6).
//!
//! When MemBuf is enabled (§IV-E), a gradient replica is permuted alongside
//! the row ids, so node-wise scans read `(row_id, g, h)` sequentially instead
//! of gathering gradients from a random-access global array — the "+MemBuf"
//! row of Table V.
//!
//! # Concurrency model
//! All mutating operations take `&self`; the safety argument is that nodes
//! own disjoint spans, and callers only operate on nodes they own: the batch
//! engine splits distinct nodes of one batch, ASYNC tasks each own one node.
//! The span table uses atomics so concurrently created children are visible
//! across worker threads.

use crate::loss::GradPair;
use harp_parallel::{SpinMutex, ThreadPool};
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Interior-mutable fixed-capacity buffer, access partitioned by node spans.
struct SyncBuf<T> {
    data: UnsafeCell<Box<[T]>>,
}

// SAFETY: callers access disjoint ranges (see module docs).
unsafe impl<T: Send> Sync for SyncBuf<T> {}
unsafe impl<T: Send> Send for SyncBuf<T> {}

impl<T: Clone + Default> SyncBuf<T> {
    fn new(len: usize) -> Self {
        Self { data: UnsafeCell::new(vec![T::default(); len].into_boxed_slice()) }
    }

    /// # Safety
    /// `range` must not be concurrently written.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, range: Range<usize>) -> &mut [T] {
        let buf = unsafe { &mut *self.data.get() };
        &mut buf[range]
    }

    /// # Safety
    /// `range` must not be concurrently written.
    unsafe fn slice(&self, range: Range<usize>) -> &[T] {
        let buf = unsafe { &*self.data.get() };
        &buf[range]
    }
}

fn pack(start: u32, len: u32) -> u64 {
    (u64::from(start) << 32) | u64::from(len)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Spans smaller than this are partitioned serially even when a pool is
/// available.
const MIN_PARALLEL_SPAN: usize = 8192;

/// Reusable scratch for [`partition_parallel`]: per-chunk left counts and
/// prefix bases. Held by the [`RowPartition`] behind a spin lock so repeated
/// parallel splits perform no heap allocation once the vectors have grown to
/// the steady-state chunk count.
#[derive(Default)]
struct PartitionScratch {
    counts: Vec<AtomicU64>,
    left_base: Vec<usize>,
}

impl PartitionScratch {
    /// Makes room for `n_chunks` chunks, zeroing the counts that will be
    /// used. Returns whether the vectors had to allocate or grow.
    fn prepare(&mut self, n_chunks: usize) -> bool {
        let grew = n_chunks > self.counts.len();
        if grew {
            self.counts.resize_with(n_chunks, || AtomicU64::new(0));
            self.left_base.resize(n_chunks, 0);
        }
        for c in &self.counts[..n_chunks] {
            c.store(0, Ordering::Relaxed);
        }
        grew
    }
}

/// Row membership and gradient replica for one tree under construction.
pub struct RowPartition {
    n_rows: usize,
    rows: SyncBuf<u32>,
    grads: SyncBuf<GradPair>,
    scratch_rows: SyncBuf<u32>,
    scratch_grads: SyncBuf<GradPair>,
    /// Packed `(start, len)` per node id; `u64::MAX` = unassigned.
    spans: Vec<AtomicU64>,
    use_membuf: bool,
    /// True between `reset` and the first `apply_split`: the row buffer is
    /// the identity permutation, so a position in the root span IS its row
    /// id (the root-scan fast path relies on this).
    identity: AtomicBool,
    /// Chunk-count scratch for parallel splits, reused across calls and
    /// trees. Spin-locked: parallel splits are only issued one at a time
    /// (from the coordinator), so the lock is uncontended; it merely keeps
    /// `apply_split` callable through `&self`.
    par_scratch: SpinMutex<PartitionScratch>,
}

impl RowPartition {
    /// Allocates buffers for `n_rows` rows and at most `max_nodes` nodes.
    pub fn new(n_rows: usize, max_nodes: usize, use_membuf: bool) -> Self {
        let grad_len = if use_membuf { n_rows } else { 0 };
        Self {
            n_rows,
            rows: SyncBuf::new(n_rows),
            grads: SyncBuf::new(grad_len),
            scratch_rows: SyncBuf::new(n_rows),
            scratch_grads: SyncBuf::new(grad_len),
            spans: (0..max_nodes).map(|_| AtomicU64::new(u64::MAX)).collect(),
            use_membuf: use_membuf && n_rows > 0,
            identity: AtomicBool::new(false),
            par_scratch: SpinMutex::new(PartitionScratch::default()),
        }
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Whether the gradient replica is maintained.
    pub fn has_membuf(&self) -> bool {
        self.use_membuf
    }

    /// Bytes held by the MemBuf gradient replica (`grads` + `scratch_grads`);
    /// zero when MemBuf is off. This is the "+MemBuf" overhead of Table V.
    pub fn membuf_bytes(&self) -> usize {
        if self.use_membuf {
            2 * self.n_rows * std::mem::size_of::<GradPair>()
        } else {
            0
        }
    }

    /// Bytes held by the row-membership buffers themselves: the row
    /// permutation and its scratch, the span table, and the parallel-split
    /// scratch (excludes the MemBuf replica — see
    /// [`membuf_bytes`](Self::membuf_bytes)).
    pub fn index_bytes(&self) -> usize {
        let scratch = self.par_scratch.lock();
        2 * self.n_rows * std::mem::size_of::<u32>()
            + self.spans.len() * std::mem::size_of::<AtomicU64>()
            + scratch.counts.capacity() * std::mem::size_of::<AtomicU64>()
            + scratch.left_base.capacity() * std::mem::size_of::<usize>()
    }

    /// Starts a new tree: identity row order under the root node (id 0),
    /// MemBuf filled from `grads`.
    ///
    /// # Panics
    /// Panics if `grads.len() != n_rows`.
    pub fn reset(&mut self, grads: &[GradPair]) {
        assert_eq!(grads.len(), self.n_rows, "gradient count mismatch");
        for s in &self.spans {
            s.store(u64::MAX, Ordering::Relaxed);
        }
        // SAFETY: `&mut self` guarantees exclusivity.
        let rows = unsafe { self.rows.slice_mut(0..self.n_rows) };
        for (i, r) in rows.iter_mut().enumerate() {
            *r = i as u32;
        }
        if self.use_membuf {
            let dst = unsafe { self.grads.slice_mut(0..self.n_rows) };
            dst.copy_from_slice(grads);
        }
        self.set_span(0, 0, self.n_rows as u32);
        self.identity.store(true, Ordering::Release);
    }

    /// Whether the row buffer is still the identity permutation (no split
    /// applied since [`reset`](Self::reset)).
    pub fn is_identity_order(&self) -> bool {
        self.identity.load(Ordering::Acquire)
    }

    fn set_span(&self, node: u32, start: u32, len: u32) {
        self.spans[node as usize].store(pack(start, len), Ordering::Release);
    }

    /// The `(start, len)` span of `node`.
    ///
    /// # Panics
    /// Panics if the node has no assigned span.
    pub fn span(&self, node: u32) -> Range<usize> {
        let v = self.spans[node as usize].load(Ordering::Acquire);
        assert_ne!(v, u64::MAX, "node {node} has no row span");
        let (start, len) = unpack(v);
        start as usize..(start + len) as usize
    }

    /// Number of rows in `node`.
    pub fn node_len(&self, node: u32) -> usize {
        self.span(node).len()
    }

    /// The row ids of `node`, ascending.
    ///
    /// # Safety contract (upheld by the trainer)
    /// The caller must not be concurrently splitting `node` or an ancestor.
    pub fn rows(&self, node: u32) -> &[u32] {
        // SAFETY: see method docs.
        unsafe { self.rows.slice(self.span(node)) }
    }

    /// The MemBuf gradient slice of `node`, aligned with
    /// [`rows`](Self::rows). Empty when MemBuf is disabled.
    pub fn grads(&self, node: u32) -> &[GradPair] {
        if !self.use_membuf {
            return &[];
        }
        // SAFETY: see `rows`.
        unsafe { self.grads.slice(self.span(node)) }
    }

    /// Stably partitions `parent`'s span: rows satisfying `goes_left` first.
    /// Assigns spans to `left`/`right` and returns `(left_len, right_len)`.
    ///
    /// `goes_left` receives `(pos, row)` where `pos` is the row's index
    /// within the parent's span (its position in `rows(parent)` before the
    /// partition) — routes that pre-gather per-node data (the out-of-core
    /// path) resolve it positionally instead of searching by row id.
    ///
    /// `pool` enables chunk-parallel partitioning for large spans; pass
    /// `None` from inside a worker task (ASYNC mode) to stay serial.
    pub fn apply_split(
        &self,
        parent: u32,
        left: u32,
        right: u32,
        goes_left: &(impl Fn(usize, u32) -> bool + Sync),
        pool: Option<&ThreadPool>,
    ) -> (u32, u32) {
        self.identity.store(false, Ordering::Release);
        let span = self.span(parent);
        let start = span.start;
        let len = span.len();
        // SAFETY: caller owns `parent` (module concurrency model); children
        // spans are sub-ranges of the parent's.
        let rows = unsafe { self.rows.slice_mut(span.clone()) };
        let scratch = unsafe { self.scratch_rows.slice_mut(span.clone()) };
        let (grads, scratch_grads) = if self.use_membuf {
            (unsafe { self.grads.slice_mut(span.clone()) }, unsafe {
                self.scratch_grads.slice_mut(span.clone())
            })
        } else {
            (&mut [][..], &mut [][..])
        };

        let n_left = match pool {
            Some(pool) if len >= MIN_PARALLEL_SPAN => partition_parallel(
                pool,
                &mut self.par_scratch.lock(),
                rows,
                grads,
                scratch,
                scratch_grads,
                goes_left,
                self.use_membuf,
            ),
            _ => partition_serial(rows, grads, scratch, scratch_grads, goes_left, self.use_membuf),
        };

        self.set_span(left, start as u32, n_left as u32);
        self.set_span(right, (start + n_left) as u32, (len - n_left) as u32);
        (n_left as u32, (len - n_left) as u32)
    }
}

/// Serial stable partition through the scratch buffers.
fn partition_serial(
    rows: &mut [u32],
    grads: &mut [GradPair],
    scratch: &mut [u32],
    scratch_grads: &mut [GradPair],
    goes_left: &impl Fn(usize, u32) -> bool,
    membuf: bool,
) -> usize {
    let len = rows.len();
    let mut l = 0usize;
    let mut r = 0usize;
    for i in 0..len {
        if goes_left(i, rows[i]) {
            scratch[l] = rows[i];
            if membuf {
                scratch_grads[l] = grads[i];
            }
            l += 1;
        } else {
            // Rights staged at the tail of scratch, in order.
            scratch[len - 1 - r] = rows[i];
            if membuf {
                scratch_grads[len - 1 - r] = grads[i];
            }
            r += 1;
        }
    }
    rows[..l].copy_from_slice(&scratch[..l]);
    // Un-reverse the right side.
    for i in 0..r {
        rows[l + i] = scratch[len - 1 - i];
    }
    if membuf {
        grads[..l].copy_from_slice(&scratch_grads[..l]);
        for i in 0..r {
            grads[l + i] = scratch_grads[len - 1 - i];
        }
    }
    l
}

/// Chunk-parallel stable partition: count, prefix, scatter, copy back.
/// Per-chunk counters and prefix bases come from `ps`, so steady-state calls
/// allocate nothing.
#[allow(clippy::too_many_arguments)]
fn partition_parallel(
    pool: &ThreadPool,
    ps: &mut PartitionScratch,
    rows: &mut [u32],
    grads: &mut [GradPair],
    scratch: &mut [u32],
    scratch_grads: &mut [GradPair],
    goes_left: &(impl Fn(usize, u32) -> bool + Sync),
    membuf: bool,
) -> usize {
    let len = rows.len();
    let chunk = (len / (pool.num_threads() * 4)).max(MIN_PARALLEL_SPAN / 4);
    let n_chunks = len.div_ceil(chunk);
    let grew = ps.prepare(n_chunks);
    pool.profile().add_partition_scratch_event(grew);
    // Pass 1: per-chunk left counts.
    let counts: &[AtomicU64] = &ps.counts[..n_chunks];
    let rows_ro: &[u32] = rows;
    pool.parallel_for(n_chunks, |c, _| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(len);
        let n = (lo..hi).filter(|&i| goes_left(i, rows_ro[i])).count();
        counts[c].store(n as u64, Ordering::Relaxed);
    });
    // Exclusive prefixes of lefts and rights.
    let left_base = &mut ps.left_base[..n_chunks];
    let mut acc = 0usize;
    for c in 0..n_chunks {
        left_base[c] = acc;
        acc += counts[c].load(Ordering::Relaxed) as usize;
    }
    let total_left = acc;

    // Pass 2: scatter into scratch at stable positions.
    struct Ptr<T>(*mut T);
    unsafe impl<T> Send for Ptr<T> {}
    unsafe impl<T> Sync for Ptr<T> {}
    impl<T> Ptr<T> {
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let scratch_ptr = Ptr(scratch.as_mut_ptr());
    let sg_ptr = Ptr(scratch_grads.as_mut_ptr());
    let grads_ro: &[GradPair] = grads;
    let left_base_ro: &[usize] = left_base;
    pool.parallel_for(n_chunks, |c, _| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(len);
        let mut l = left_base_ro[c];
        let mut r = total_left + (lo - left_base_ro[c]);
        for i in lo..hi {
            let row = rows_ro[i];
            let dst = if goes_left(i, row) { &mut l } else { &mut r };
            // SAFETY: stable-partition target positions are unique across
            // chunks by construction of the prefix sums.
            unsafe {
                *scratch_ptr.get().add(*dst) = row;
                if membuf {
                    *sg_ptr.get().add(*dst) = grads_ro[i];
                }
            }
            *dst += 1;
        }
    });
    rows.copy_from_slice(scratch);
    if membuf {
        grads.copy_from_slice(scratch_grads);
    }
    total_left
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(n: usize, membuf: bool) -> RowPartition {
        let mut p = RowPartition::new(n, 64, membuf);
        let grads: Vec<GradPair> = (0..n).map(|i| [i as f32, 1.0]).collect();
        p.reset(&grads);
        p
    }

    #[test]
    fn reset_assigns_all_rows_to_root() {
        let p = fresh(10, true);
        assert_eq!(p.rows(0), (0..10).collect::<Vec<u32>>().as_slice());
        assert_eq!(p.node_len(0), 10);
        assert_eq!(p.grads(0)[3], [3.0, 1.0]);
        assert!(p.is_identity_order());
    }

    #[test]
    fn identity_order_cleared_by_split_and_restored_by_reset() {
        let p = fresh(10, true);
        assert!(p.is_identity_order());
        p.apply_split(0, 1, 2, &|_, r| r % 2 == 0, None);
        assert!(!p.is_identity_order());
        let mut p = p;
        let grads: Vec<GradPair> = (0..10).map(|i| [i as f32, 1.0]).collect();
        p.reset(&grads);
        assert!(p.is_identity_order());
    }

    #[test]
    fn split_is_stable_and_complete() {
        let p = fresh(10, true);
        p.apply_split(0, 1, 2, &|_, r| r % 3 == 0, None);
        assert_eq!(p.rows(1), &[0, 3, 6, 9]);
        assert_eq!(p.rows(2), &[1, 2, 4, 5, 7, 8]);
        // MemBuf permuted identically.
        assert_eq!(p.grads(1)[1], [3.0, 1.0]);
        assert_eq!(p.grads(2)[0], [1.0, 1.0]);
    }

    #[test]
    fn nested_splits_partition_spans() {
        let p = fresh(16, true);
        p.apply_split(0, 1, 2, &|_, r| r < 8, None);
        p.apply_split(1, 3, 4, &|_, r| r % 2 == 0, None);
        p.apply_split(2, 5, 6, &|_, r| r >= 12, None);
        assert_eq!(p.rows(3), &[0, 2, 4, 6]);
        assert_eq!(p.rows(4), &[1, 3, 5, 7]);
        assert_eq!(p.rows(5), &[12, 13, 14, 15]);
        assert_eq!(p.rows(6), &[8, 9, 10, 11]);
        // Sibling spans are adjacent inside the parent span.
        assert_eq!(p.span(3).end, p.span(4).start);
        assert_eq!(p.span(5).end, p.span(6).start);
    }

    #[test]
    fn empty_side_allowed() {
        let p = fresh(5, true);
        let (l, r) = p.apply_split(0, 1, 2, &|_, _| true, None);
        assert_eq!((l, r), (5, 0));
        assert_eq!(p.node_len(2), 0);
        assert_eq!(p.rows(1), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_partition_matches_serial() {
        let n = 50_000;
        let pool = ThreadPool::new(4);
        let pred = |_: usize, r: u32| (r.wrapping_mul(2654435761)) % 5 < 2;
        let ps = fresh(n, true);
        ps.apply_split(0, 1, 2, &pred, None);
        let pp = fresh(n, true);
        pp.apply_split(0, 1, 2, &pred, Some(&pool));
        assert_eq!(ps.rows(1), pp.rows(1));
        assert_eq!(ps.rows(2), pp.rows(2));
        assert_eq!(ps.grads(1), pp.grads(1));
    }

    #[test]
    fn parallel_partition_scratch_is_reused_across_splits_and_trees() {
        let n = 60_000;
        let profile = std::sync::Arc::new(harp_parallel::Profile::new());
        let pool = ThreadPool::with_profile(4, std::sync::Arc::clone(&profile));
        let grads: Vec<GradPair> = (0..n).map(|i| [i as f32, 1.0]).collect();
        let mut p = RowPartition::new(n, 64, true);
        for tree in 0..3 {
            p.reset(&grads);
            // Root split is the largest span this partition will ever see, so
            // the first call sizes the scratch for good.
            p.apply_split(0, 1, 2, &|_, r| r % 2 == 0, Some(&pool));
            p.apply_split(1, 3, 4, &|_, r| r % 3 == 0, Some(&pool));
            let allocs = profile.partition_scratch_allocs.load(Ordering::Relaxed);
            let reuses = profile.partition_scratch_reuses.load(Ordering::Relaxed);
            if tree == 0 {
                assert_eq!(allocs, 1, "only the first parallel split may allocate");
                assert_eq!(reuses, 1);
            }
            assert_eq!(allocs, 1, "steady state must not allocate (tree {tree})");
            assert_eq!(allocs + reuses, 2 * (tree + 1));
        }
        // Results stay correct through the reused scratch.
        assert!(p.rows(3).windows(2).all(|w| w[0] < w[1]));
        assert_eq!(p.node_len(3) + p.node_len(4) + p.node_len(2), n);
    }

    #[test]
    fn rows_stay_ascending_after_splits() {
        let n = 20_000;
        let pool = ThreadPool::new(3);
        let p = fresh(n, false);
        p.apply_split(0, 1, 2, &|_, r| r % 7 == 0, Some(&pool));
        p.apply_split(2, 3, 4, &|_, r| r % 3 == 0, Some(&pool));
        for node in [1u32, 3, 4] {
            let rows = p.rows(node);
            for w in rows.windows(2) {
                assert!(w[0] < w[1], "node {node} rows out of order");
            }
        }
    }

    #[test]
    fn membuf_disabled_returns_empty() {
        let p = fresh(10, false);
        assert!(!p.has_membuf());
        assert!(p.grads(0).is_empty());
        p.apply_split(0, 1, 2, &|_, r| r < 5, None);
        assert_eq!(p.rows(1), &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "no row span")]
    fn unassigned_node_panics() {
        let p = fresh(4, false);
        let _ = p.span(7);
    }

    #[test]
    fn reset_clears_previous_tree() {
        let mut p = fresh(8, true);
        p.apply_split(0, 1, 2, &|_, r| r < 4, None);
        let grads: Vec<GradPair> = (0..8).map(|i| [-(i as f32), 2.0]).collect();
        p.reset(&grads);
        assert_eq!(p.node_len(0), 8);
        assert_eq!(p.grads(0)[2], [-2.0, 2.0]);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.span(1)));
        assert!(caught.is_err(), "old child span must be cleared");
    }
}
