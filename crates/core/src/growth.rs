//! Tree growth policies: depthwise, leafwise, and TopK (§IV-B).
//!
//! Algorithm 1 unifies growth methods behind a priority queue with a
//! dedicated comparison function; [`GrowthQueue`] is that queue. Splittable
//! nodes are pushed with their best split's gain; each growth step pops up
//! to `K` candidates:
//!
//! * depthwise: ordered by (depth, −gain) — `K = ∞` pops whole levels,
//!   finite `K` pops level subsets but builds the same tree (Fig. 6a/b);
//! * leafwise: ordered by −gain — `K = 1` is classic leafwise, larger `K`
//!   is the paper's TopK method (Fig. 6c/d).
//!
//! The same ordering type drives the ASYNC mode's shared [`harp_parallel::WorkQueue`].

use crate::params::GrowthMethod;
use crate::split::SplitCandidate;
use crate::tree::NodeId;
use std::collections::BinaryHeap;

/// A splittable node waiting in the growth queue.
#[derive(Debug, Clone, Copy)]
pub struct RankedCandidate {
    /// Node to split.
    pub node: NodeId,
    /// Depth of that node.
    pub depth: u32,
    /// Its best split and child statistics.
    pub cand: SplitCandidate,
    /// Depth priority: depthwise orders by depth first; leafwise ignores it
    /// (stored as 0).
    depth_key: u32,
    /// Push sequence number: ties broken FIFO for determinism.
    seq: u64,
}

impl PartialEq for RankedCandidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for RankedCandidate {}

impl PartialOrd for RankedCandidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedCandidate {
    /// "Greater" = pop first: shallower depth key, then larger gain, then
    /// earlier push.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .depth_key
            .cmp(&self.depth_key)
            .then_with(|| self.cand.split.gain.total_cmp(&other.cand.split.gain))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl RankedCandidate {
    /// Builds a ranked candidate outside a [`GrowthQueue`] — used by the
    /// ASYNC work queue, whose workers mint candidates concurrently with a
    /// shared atomic sequence counter.
    pub(crate) fn for_async(
        node: NodeId,
        depth: u32,
        cand: SplitCandidate,
        seq: u64,
        depthwise: bool,
    ) -> Self {
        Self { node, depth, cand, depth_key: if depthwise { depth } else { 0 }, seq }
    }
}

/// The growth priority queue.
#[derive(Debug)]
pub struct GrowthQueue {
    method: GrowthMethod,
    heap: BinaryHeap<RankedCandidate>,
    next_seq: u64,
}

impl GrowthQueue {
    /// Creates an empty queue for `method`.
    pub fn new(method: GrowthMethod) -> Self {
        Self { method, heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Wraps a candidate with this queue's priority key (also used to seed
    /// the ASYNC work queue with a compatible ordering).
    pub fn rank(&mut self, node: NodeId, depth: u32, cand: SplitCandidate) -> RankedCandidate {
        let seq = self.next_seq;
        self.next_seq += 1;
        RankedCandidate {
            node,
            depth,
            cand,
            depth_key: match self.method {
                GrowthMethod::Depthwise => depth,
                GrowthMethod::Leafwise => 0,
            },
            seq,
        }
    }

    /// Pushes a splittable node.
    pub fn push(&mut self, node: NodeId, depth: u32, cand: SplitCandidate) {
        let ranked = self.rank(node, depth, cand);
        self.heap.push(ranked);
    }

    /// Pops up to `k` candidates, but never more than `budget` (remaining
    /// leaf allowance: each split adds one leaf).
    pub fn pop_batch(&mut self, k: usize, budget: usize) -> Vec<RankedCandidate> {
        let take = k.min(budget);
        let mut out = Vec::with_capacity(take.min(self.heap.len()));
        while out.len() < take {
            match self.heap.pop() {
                Some(c) => out.push(c),
                None => break,
            }
        }
        out
    }

    /// Number of queued candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains the queue (tree finished: remaining candidates become leaves).
    pub fn drain(&mut self) -> Vec<RankedCandidate> {
        std::mem::take(&mut self.heap).into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{NodeStats, SplitData};

    fn cand(gain: f64) -> SplitCandidate {
        SplitCandidate {
            split: SplitData { feature: 0, bin: 0, threshold: 0.0, default_left: false, gain },
            left: NodeStats::default(),
            right: NodeStats::default(),
        }
    }

    #[test]
    fn leafwise_pops_by_gain() {
        let mut q = GrowthQueue::new(GrowthMethod::Leafwise);
        q.push(1, 3, cand(1.0));
        q.push(2, 1, cand(5.0));
        q.push(3, 2, cand(3.0));
        let batch = q.pop_batch(2, usize::MAX);
        assert_eq!(batch.iter().map(|c| c.node).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn depthwise_pops_shallow_first() {
        let mut q = GrowthQueue::new(GrowthMethod::Depthwise);
        q.push(5, 2, cand(100.0));
        q.push(1, 1, cand(0.5));
        q.push(2, 1, cand(2.0));
        let batch = q.pop_batch(3, usize::MAX);
        // Depth-1 nodes first (higher gain among equals), then depth 2.
        assert_eq!(batch.iter().map(|c| c.node).collect::<Vec<_>>(), vec![2, 1, 5]);
    }

    #[test]
    fn budget_limits_batch() {
        let mut q = GrowthQueue::new(GrowthMethod::Leafwise);
        for i in 0..5 {
            q.push(i, 0, cand(i as f64));
        }
        let batch = q.pop_batch(10, 2);
        assert_eq!(batch.len(), 2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = GrowthQueue::new(GrowthMethod::Leafwise);
        q.push(7, 0, cand(1.0));
        q.push(8, 0, cand(1.0));
        q.push(9, 0, cand(1.0));
        let batch = q.pop_batch(3, usize::MAX);
        assert_eq!(batch.iter().map(|c| c.node).collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = GrowthQueue::new(GrowthMethod::Leafwise);
        q.push(1, 0, cand(1.0));
        q.push(2, 0, cand(2.0));
        let rest = q.drain();
        assert_eq!(rest.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn empty_pop_returns_empty() {
        let mut q = GrowthQueue::new(GrowthMethod::Depthwise);
        assert!(q.pop_batch(4, usize::MAX).is_empty());
    }

    #[test]
    fn ranked_ordering_is_total_and_consistent() {
        let mut q = GrowthQueue::new(GrowthMethod::Leafwise);
        let a = q.rank(1, 0, cand(2.0));
        let b = q.rank(2, 0, cand(1.0));
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }
}
