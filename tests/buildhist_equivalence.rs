//! BuildHist kernel-specialization safety net.
//!
//! The specialized kernels (unrolled dense row scan with sink cells, root
//! fast path, galloping column scan) must be *bitwise* equal to the retained
//! scalar references on any input — same values, same accumulation order.
//! These property tests drive random dense/sparse matrices with missing
//! values through both paths; the fixture test pins whole-training output
//! across versions, and the steady-state tests pin the replica arena's
//! zero-allocation guarantee.

use harp_binning::{BinningConfig, LayoutOptions, QuantizedMatrix, MISSING_NIBBLE};
use harp_data::{CsrMatrix, Dataset, DatasetKind, DenseMatrix, FeatureMatrix, SynthConfig};
use harp_parallel::{Profile, ThreadPool};
use harpgbdt::hist::hist_width;
use harpgbdt::kernels::{
    col_scan, col_scan_scalar, row_scan, row_scan_root, row_scan_scalar, GradSource,
};
use harpgbdt::partition::RowPartition;
use harpgbdt::trainer::{build_hists_dp, DriverCtx, DriverScratch, HistJob};
use harpgbdt::{GbdtTrainer, GrowthMethod, ParallelMode, TrainParams};
use proptest::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

type Grad = [f32; 2];

struct Case {
    qm: QuantizedMatrix,
    grads: Vec<Grad>,
    /// An ascending strict subset of the rows (like a tree node's row set).
    rows: Vec<u32>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn grads_and_rows(n: usize, seed: u64) -> (Vec<Grad>, Vec<u32>) {
    let mut s = seed;
    let grads = (0..n)
        .map(|_| {
            let r = splitmix(&mut s);
            [((r % 31) as f32) - 15.0, ((r >> 8) % 7) as f32 * 0.25 + 0.25]
        })
        .collect();
    let keep = (splitmix(&mut s) % 3) + 1; // keep 1/1, 1/2 or 1/3 of rows
    let rows = (0..n as u32).filter(|r| u64::from(*r) % keep == 0).collect();
    (grads, rows)
}

/// Random dense matrix with missing values (NaN), quantized.
fn dense_case() -> impl Strategy<Value = Case> {
    (1usize..120, 1usize..9, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut s = seed;
        let mut values = Vec::with_capacity(n * m);
        for _ in 0..n * m {
            let r = splitmix(&mut s);
            if r % 13 == 0 {
                values.push(f32::NAN);
            } else {
                values.push((r % 500) as f32 / 100.0);
            }
        }
        let qm = QuantizedMatrix::from_matrix(
            &FeatureMatrix::Dense(DenseMatrix::from_vec(n, m, values)),
            BinningConfig::with_max_bins(16),
        );
        let (grads, rows) = grads_and_rows(n, seed ^ 0xABCD);
        Case { qm, grads, rows }
    })
}

/// Random CSR matrix (absent = missing), quantized.
fn sparse_case() -> impl Strategy<Value = Case> {
    (1usize..120, 2usize..9, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut s = seed;
        let rows_vec: Vec<Vec<(u32, f32)>> = (0..n)
            .map(|_| {
                (0..m as u32)
                    .filter_map(|c| {
                        let r = splitmix(&mut s);
                        (r % 3 != 0).then_some((c, (r % 500) as f32 / 100.0))
                    })
                    .collect()
            })
            .collect();
        let qm = QuantizedMatrix::from_matrix(
            &FeatureMatrix::Sparse(CsrMatrix::from_rows(m, &rows_vec)),
            BinningConfig::with_max_bins(16),
        );
        let (grads, rows) = grads_and_rows(n, seed ^ 0xABCD);
        Case { qm, grads, rows }
    })
}

/// Random grouped one-hot CSR matrix: features inside a group are mutually
/// exclusive (at most one present per row), groups are independent — the
/// shape the EFB bundling pass exists for.
fn one_hot_matrix() -> impl Strategy<Value = FeatureMatrix> {
    (8usize..80, 2usize..5, any::<u64>()).prop_map(|(n, groups, seed)| {
        let mut s = seed;
        let per = 4usize;
        let m = groups * per;
        // Deterministic preamble: every cross-group feature pair co-occurs
        // in some row, so the greedy planner can never merge two groups
        // whose sampled supports happen to be disjoint — engagement is
        // guaranteed, with exactly one storage column per group.
        let mut rows: Vec<Vec<(u32, f32)>> = Vec::new();
        for g in 0..groups {
            for g2 in g + 1..groups {
                for a in 0..per {
                    for b in 0..per {
                        rows.push(vec![((g * per + a) as u32, 1.0), ((g2 * per + b) as u32, 1.0)]);
                    }
                }
            }
        }
        rows.extend((0..n).map(|_| {
            (0..groups)
                .filter_map(|g| {
                    let r = splitmix(&mut s);
                    (r % 4 != 0).then(|| {
                        let f = (g * per) as u32 + ((r >> 4) % per as u64) as u32;
                        (f, ((r >> 8) % 5) as f32 + 1.0)
                    })
                })
                .collect()
        }));
        FeatureMatrix::Sparse(CsrMatrix::from_rows(m, &rows))
    })
}

/// Dense matrix whose features all use few enough bins that the u4 pack
/// always engages.
fn u4_case() -> impl Strategy<Value = Case> {
    (1usize..100, 1usize..9, any::<u64>()).prop_map(|(n, m, seed)| {
        let mut s = seed;
        let values: Vec<f32> = (0..n * m)
            .map(|_| {
                let r = splitmix(&mut s);
                if r % 11 == 0 {
                    f32::NAN
                } else {
                    (r % 12) as f32
                }
            })
            .collect();
        let qm = QuantizedMatrix::from_matrix(
            &FeatureMatrix::Dense(DenseMatrix::from_vec(n, m, values)),
            BinningConfig::with_max_bins(16),
        );
        let (grads, rows) = grads_and_rows(n, seed ^ 0xABCD);
        Case { qm, grads, rows }
    })
}

fn padded(qm: &QuantizedMatrix) -> usize {
    hist_width(qm.mapper().total_bins(), qm.n_features())
}

/// Fast vs scalar row scan over a feature-block split, both grad sources.
fn check_row_scan(case: &Case, n_blocks: usize) {
    let m = case.qm.n_features();
    let width = padded(&case.qm);
    let membuf: Vec<Grad> = case.rows.iter().map(|&r| case.grads[r as usize]).collect();
    let blk = m.div_ceil(n_blocks.clamp(1, m));
    let mut fast = vec![0.0; width];
    let mut scalar = vec![0.0; width];
    let mut fast_mb = vec![0.0; width];
    let mut cells_fast = 0u64;
    let mut cells_scalar = 0u64;
    let mut lo = 0;
    while lo < m {
        let hi = (lo + blk).min(m);
        cells_fast +=
            row_scan(&case.qm, &case.rows, GradSource::Global(&case.grads), lo..hi, &mut fast);
        cells_scalar += row_scan_scalar(
            &case.qm,
            &case.rows,
            GradSource::Global(&case.grads),
            lo..hi,
            &mut scalar,
        );
        row_scan(&case.qm, &case.rows, GradSource::MemBuf(&membuf), lo..hi, &mut fast_mb);
        lo = hi;
    }
    assert_eq!(fast, scalar, "specialized row_scan != scalar ({n_blocks} blocks)");
    assert_eq!(fast_mb, scalar, "MemBuf row_scan != scalar ({n_blocks} blocks)");
    assert_eq!(cells_fast, cells_scalar, "cell counts diverged");
}

/// Fast vs scalar column scan, every feature.
fn check_col_scan(case: &Case) {
    for f in 0..case.qm.n_features() {
        let n_bins = case.qm.mapper().n_bins(f) as usize;
        if n_bins == 0 {
            continue;
        }
        let mut fast = vec![0.0; n_bins * 2];
        let mut scalar = vec![0.0; n_bins * 2];
        let cf = col_scan(
            &case.qm,
            f,
            &case.rows,
            GradSource::Global(&case.grads),
            0..n_bins,
            &mut fast,
        );
        let cs = col_scan_scalar(
            &case.qm,
            f,
            &case.rows,
            GradSource::Global(&case.grads),
            0..n_bins,
            &mut scalar,
        );
        assert_eq!(fast, scalar, "col_scan != scalar at feature {f}");
        assert_eq!(cf, cs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_row_scan_bitwise_equals_scalar(case in dense_case(), n_blocks in 1usize..4) {
        check_row_scan(&case, n_blocks);
    }

    #[test]
    fn sparse_row_scan_bitwise_equals_scalar(case in sparse_case(), n_blocks in 1usize..4) {
        check_row_scan(&case, n_blocks);
    }

    #[test]
    fn col_scan_bitwise_equals_scalar_dense(case in dense_case()) {
        check_col_scan(&case);
    }

    #[test]
    fn col_scan_bitwise_equals_scalar_sparse(case in sparse_case()) {
        check_col_scan(&case);
    }

    #[test]
    fn root_scan_bitwise_equals_slice_scan(case in dense_case()) {
        let n = case.qm.n_rows();
        let m = case.qm.n_features();
        let width = padded(&case.qm);
        let all: Vec<u32> = (0..n as u32).collect();
        let mut by_slice = vec![0.0; width];
        let mut by_range = vec![0.0; width];
        row_scan(&case.qm, &all, GradSource::Global(&case.grads), 0..m, &mut by_slice);
        row_scan_root(&case.qm, 0..n, GradSource::Global(&case.grads), 0..m, &mut by_range);
        prop_assert_eq!(&by_slice, &by_range);
        // Sub-range of the root span (a row chunk of a DP task).
        let lo = n / 3;
        let mut chunk_slice = vec![0.0; width];
        let mut chunk_range = vec![0.0; width];
        row_scan(&case.qm, &all[lo..], GradSource::Global(&case.grads), 0..m, &mut chunk_slice);
        row_scan_root(&case.qm, lo..n, GradSource::Global(&case.grads), 0..m, &mut chunk_range);
        prop_assert_eq!(&chunk_slice, &chunk_range);
    }

    /// u4 pack/unpack round-trip: every nibble in both packed majors decodes
    /// to exactly the `u8` bin it was packed from (missing included).
    #[test]
    fn u4_pack_round_trips(case in u4_case()) {
        let qm = &case.qm;
        let pack = qm.u4().expect("low-cardinality dense must engage the u4 pack");
        for r in 0..qm.n_rows() {
            for f in 0..qm.n_features() {
                let nib = pack.nibble(r, f);
                match qm.bin(r, f) {
                    Some(b) => prop_assert_eq!(nib, b),
                    None => prop_assert_eq!(nib, MISSING_NIBBLE),
                }
                let from_col = (pack.packed_col(f)[r / 2] >> (4 * (r & 1))) & 0xF;
                prop_assert_eq!(from_col, nib);
            }
        }
    }

    /// The u4 kernels are bitwise-equal to the scalar reference.
    #[test]
    fn u4_kernels_bitwise_equal_scalar(case in u4_case(), n_blocks in 1usize..4) {
        check_row_scan(&case, n_blocks);
        check_col_scan(&case);
    }

    /// Bundle build + translate-back exactness: every ⟨row, feature, bin⟩ of
    /// the uncompressed sparse storage survives the round trip through the
    /// bundled layout, and nothing extra appears.
    #[test]
    fn bundling_translates_back_exactly(matrix in one_hot_matrix()) {
        let cfg = BinningConfig::with_max_bins(16);
        let plain = QuantizedMatrix::from_matrix_opts(&matrix, cfg, LayoutOptions::uncompressed());
        let bundled = QuantizedMatrix::from_matrix_opts(&matrix, cfg, LayoutOptions::default());
        prop_assert!(bundled.is_bundled(), "grouped one-hot features must bundle");
        let map = bundled.mapper().bundles().unwrap();
        prop_assert_eq!(map.conflicts(), 0);
        for r in 0..plain.n_rows() {
            for f in 0..plain.n_features() {
                prop_assert_eq!(bundled.bin(r, f), plain.bin(r, f));
            }
            let mut seen: Vec<(u32, u8)> = Vec::new();
            bundled.for_each_in_row(r, |f, b| seen.push((f, b)));
            seen.sort_unstable();
            let (cols, bins) = plain.sparse_row(r).unwrap();
            let expect: Vec<(u32, u8)> =
                cols.iter().copied().zip(bins.iter().copied()).collect();
            prop_assert_eq!(seen, expect);
        }
    }

    /// The bundled kernels are bitwise-equal to the scalar reference.
    #[test]
    fn bundled_kernels_bitwise_equal_scalar(
        matrix in one_hot_matrix(),
        n_blocks in 1usize..4,
        seed in any::<u64>(),
    ) {
        let qm = QuantizedMatrix::from_matrix(&matrix, BinningConfig::with_max_bins(16));
        prop_assert!(qm.is_bundled());
        let (grads, rows) = grads_and_rows(qm.n_rows(), seed);
        let case = Case { qm, grads, rows };
        check_row_scan(&case, n_blocks);
        check_col_scan(&case);
    }

    /// Every SIMD tier (clamped to what the host supports) produces bitwise
    /// the same histograms as the scalar reference, on every layout.
    #[test]
    fn forced_tiers_bitwise_equal_scalar(
        dense in u4_case(),
        matrix in one_hot_matrix(),
        tier_idx in 0usize..3,
    ) {
        use harpgbdt::kernels::{col_scan_forced_tier, row_scan_forced_tier, SimdTier};
        let tier = [SimdTier::Scalar, SimdTier::Sse2, SimdTier::Avx2][tier_idx];
        let sparse_qm = QuantizedMatrix::from_matrix_opts(
            &matrix,
            BinningConfig::with_max_bins(16),
            LayoutOptions::uncompressed(),
        );
        let (sgrads, srows) = grads_and_rows(sparse_qm.n_rows(), 0x5eed);
        let sparse = Case { qm: sparse_qm, grads: sgrads, rows: srows };
        for case in [&dense, &sparse] {
            let m = case.qm.n_features();
            let width = padded(&case.qm);
            let mut forced = vec![0.0; width];
            let mut scalar = vec![0.0; width];
            row_scan_forced_tier(
                tier, &case.qm, &case.rows, GradSource::Global(&case.grads), 0..m, &mut forced,
            );
            row_scan_scalar(&case.qm, &case.rows, GradSource::Global(&case.grads), 0..m, &mut scalar);
            prop_assert_eq!(&forced, &scalar);
            for f in 0..m {
                let n_bins = case.qm.mapper().n_bins(f) as usize;
                if n_bins == 0 {
                    continue;
                }
                let mut fast = vec![0.0; n_bins * 2];
                let mut slow = vec![0.0; n_bins * 2];
                col_scan_forced_tier(
                    tier, &case.qm, f, &case.rows, GradSource::Global(&case.grads),
                    0..n_bins, &mut fast,
                );
                col_scan_scalar(
                    &case.qm, f, &case.rows, GradSource::Global(&case.grads),
                    0..n_bins, &mut slow,
                );
                prop_assert_eq!(&fast, &slow);
            }
        }
    }
}

fn fixture_params(mode: ParallelMode, use_membuf: bool) -> TrainParams {
    TrainParams {
        n_trees: 5,
        tree_size: 4,
        n_threads: 4,
        k: 4,
        growth: GrowthMethod::Leafwise,
        mode,
        use_membuf,
        deterministic: true,
        // Subtraction changes FP association; the fixture pins the pure
        // BuildHist path.
        hist_subtraction: false,
        ..TrainParams::default()
    }
}

fn fixture_data() -> Dataset {
    SynthConfig::new(DatasetKind::HiggsLike, 42).with_scale(0.02).generate()
}

fn prediction_hash(params: TrainParams, data: &Dataset) -> (usize, u64) {
    let out = GbdtTrainer::new(params).unwrap().train(data);
    let preds = out.model.predict_raw(&data.features);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in &preds {
        h ^= u64::from(p.to_bits());
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (preds.len(), h)
}

/// Training output is bitwise identical to the version *before* the kernel
/// specialization: this hash was produced by the pre-change scalar-only
/// trainer on the same data and parameters.
#[test]
fn training_fixture_is_bitwise_stable_across_versions() {
    const EXPECTED_N: usize = 400;
    const EXPECTED_HASH: u64 = 0x27f7_6bdc_6855_2b22;
    let data = fixture_data();
    for (name, params) in [
        ("dp_membuf", fixture_params(ParallelMode::DataParallel, true)),
        ("dp_global", fixture_params(ParallelMode::DataParallel, false)),
        ("mp_membuf", fixture_params(ParallelMode::ModelParallel, true)),
    ] {
        let (n, h) = prediction_hash(params, &data);
        assert_eq!(n, EXPECTED_N, "{name}: prediction count changed");
        assert_eq!(h, EXPECTED_HASH, "{name}: predictions changed bitwise across versions");
    }
}

/// The scalar-kernel toggle trains to bitwise identical models.
#[test]
fn scalar_kernel_toggle_trains_identically() {
    let data = fixture_data();
    for mode in [ParallelMode::DataParallel, ParallelMode::ModelParallel] {
        let fast = prediction_hash(fixture_params(mode, true), &data);
        let scalar = prediction_hash(
            TrainParams { use_scalar_kernels: true, ..fixture_params(mode, true) },
            &data,
        );
        assert_eq!(fast, scalar, "{mode:?}: kernel specialization changed training output");
    }
}

/// A sparse grouped one-hot dataset large enough to train on, labels tied
/// to which feature of each group fires.
fn one_hot_dataset(n: usize) -> Dataset {
    let (groups, per) = (4usize, 4usize);
    let m = groups * per;
    let mut s = 0x0E0Fu64;
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row: Vec<(u32, f32)> = Vec::new();
        let mut y = 0.0f32;
        for g in 0..groups {
            let r = splitmix(&mut s);
            if r % 4 != 0 {
                let f = g * per + ((r >> 4) % per as u64) as usize;
                let v = ((r >> 8) % 5) as f32 + 1.0;
                row.push((f as u32, v));
                y += if f % 2 == 0 { v } else { -v };
            }
        }
        labels.push(f32::from(u8::from(y > 0.0)));
        rows.push(row);
    }
    Dataset {
        name: "one-hot".into(),
        features: FeatureMatrix::Sparse(CsrMatrix::from_rows(m, &rows)),
        labels,
        query_groups: None,
    }
}

/// Training on the bundled layout is bitwise identical to training on
/// uncompressed sparse storage, in both parallel modes — the histograms,
/// split translation, ApplySplit routing and binned prediction all round-
/// trip through the bundle map exactly.
#[test]
fn bundled_training_is_bitwise_equal_to_uncompressed() {
    let data = one_hot_dataset(600);
    for mode in [ParallelMode::DataParallel, ParallelMode::ModelParallel] {
        let params = fixture_params(mode, true);
        let bundled = GbdtTrainer::new(params.clone()).unwrap().train(&data);
        assert!(
            bundled.diagnostics.profile.cols_bundled > 0,
            "{mode:?}: one-hot groups must engage bundling"
        );
        let plain = GbdtTrainer::new(params)
            .unwrap()
            .with_layout(LayoutOptions::uncompressed())
            .train(&data);
        assert_eq!(plain.diagnostics.profile.cols_bundled, 0);
        let pb = bundled.model.predict_raw(&data.features);
        let pp = plain.model.predict_raw(&data.features);
        let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&pb), bits(&pp), "{mode:?}: bundled training diverged");

        // The binned predict fast path routes through the bundle map too.
        let qm = QuantizedMatrix::from_matrix(&data.features, BinningConfig::default());
        assert!(qm.is_bundled());
        let binned = bundled.model.compile().predict_raw_binned(&qm);
        assert_eq!(bits(&binned), bits(&pb), "{mode:?}: binned predict diverged on bundles");
    }
}

/// Two consecutive driver calls on pooled replicas are bitwise identical:
/// the dirty-range re-zeroing restores exact fresh-buffer state.
#[test]
fn pooled_replicas_reproduce_bitwise_across_frontiers() {
    let data = fixture_data();
    let qm = QuantizedMatrix::from_matrix(&data.features, BinningConfig::default());
    let n = qm.n_rows();
    let grads: Vec<Grad> = (0..n).map(|i| [((i * 13) % 23) as f32 - 11.0, 1.0]).collect();
    let mut part = RowPartition::new(n, 64, true);
    part.reset(&grads);
    part.apply_split(0, 1, 2, &|_, r| r % 2 == 0, None);
    part.apply_split(1, 3, 4, &|_, r| r % 5 == 0, None);
    let params = TrainParams { n_threads: 4, deterministic: true, ..TrainParams::default() };
    let pool = ThreadPool::new(4);
    let width = hist_width(qm.mapper().total_bins(), qm.n_features());
    let mut scratch = DriverScratch::new();
    let run = |nodes: &[u32], scratch: &mut DriverScratch| -> Vec<Vec<f64>> {
        let ctx =
            DriverCtx { qm: &qm, params: &params, pool: &pool, partition: &part, grads: &grads };
        let mut jobs: Vec<HistJob> =
            nodes.iter().map(|&node| HistJob { node, buf: vec![0.0; width] }).collect();
        build_hists_dp(&ctx, scratch, &mut jobs);
        jobs.into_iter().map(|j| j.buf).collect()
    };
    let first = run(&[3, 4, 2], &mut scratch);
    let _interleaved = run(&[2], &mut scratch);
    let second = run(&[3, 4, 2], &mut scratch);
    assert_eq!(first, second, "pooled replicas leaked state between frontiers");
}

/// Steady-state training performs no replica allocations: the arena only
/// allocates while the first tree discovers the frontier shapes, and trees
/// 2..n reuse everything.
#[test]
fn replica_arena_stops_allocating_after_first_tree() {
    let data = fixture_data();
    let one_tree = TrainParams { n_trees: 1, ..fixture_params(ParallelMode::DataParallel, true) };
    let out = GbdtTrainer::new(one_tree).unwrap().train(&data);
    let first_tree_allocs = out.diagnostics.profile.scratch_allocs;
    assert!(first_tree_allocs > 0, "DP training must use the replica arena");

    let five_trees = fixture_params(ParallelMode::DataParallel, true);
    let out = GbdtTrainer::new(five_trees).unwrap().train(&data);
    assert_eq!(
        out.diagnostics.profile.scratch_allocs, first_tree_allocs,
        "trees after the first must not allocate replicas"
    );
    assert!(out.diagnostics.profile.scratch_reuses > 0, "later trees must reuse pooled replicas");
}

/// Same guarantee at the driver level with an explicit profile: repeated
/// same-shape frontiers allocate exactly once.
#[test]
fn driver_steady_state_is_allocation_free() {
    let data = fixture_data();
    let qm = QuantizedMatrix::from_matrix(&data.features, BinningConfig::default());
    let n = qm.n_rows();
    let grads: Vec<Grad> = (0..n).map(|i| [(i % 7) as f32 - 3.0, 1.0]).collect();
    let mut part = RowPartition::new(n, 64, true);
    part.reset(&grads);
    part.apply_split(0, 1, 2, &|_, r| r % 2 == 0, None);
    let params = TrainParams { n_threads: 4, ..TrainParams::default() };
    let profile = Arc::new(Profile::new());
    let pool = ThreadPool::with_profile(4, Arc::clone(&profile));
    let width = hist_width(qm.mapper().total_bins(), qm.n_features());
    let mut scratch = DriverScratch::new();
    for call in 0..4 {
        let ctx =
            DriverCtx { qm: &qm, params: &params, pool: &pool, partition: &part, grads: &grads };
        let mut jobs: Vec<HistJob> =
            [1u32, 2].iter().map(|&node| HistJob { node, buf: vec![0.0; width] }).collect();
        build_hists_dp(&ctx, &mut scratch, &mut jobs);
        let allocs = profile.scratch_allocs.load(Ordering::Relaxed);
        let reuses = profile.scratch_reuses.load(Ordering::Relaxed);
        if call == 0 {
            assert!(allocs > 0);
            assert_eq!(reuses, 0);
        } else {
            assert_eq!(allocs + reuses, allocs * (call as u64 + 1), "steady state allocated");
        }
    }
}
