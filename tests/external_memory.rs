//! External-memory equivalence battery: training through a mmap-backed
//! [`ChunkedStore`] must be **bitwise identical** to in-core training on the
//! same quantized matrix, in every parallel mode and under any resident
//! budget — the budget may only change *when* chunks are decoded, never a
//! single accumulated bit.
//!
//! Why the equality holds: a node's row list is ascending, the chunked scan
//! splits it into per-chunk contiguous runs scanned in ascending chunk
//! order, so every histogram cell sees its rows in exactly the order the
//! monolithic scan used — the f64 summation expression is unchanged.

use harp_bench::{prepared, PreparedData};
use harpgbdt::{
    write_cache, CacheError, ChunkedStore, GbdtTrainer, GrowthMethod, ParallelMode, Predictor,
    QuantStore, TrainParams,
};
use std::path::PathBuf;

/// A deterministic configuration (static DP schedule): the in-core run is
/// reproducible, so the chunked run can be compared against it bitwise.
fn params(mode: ParallelMode) -> TrainParams {
    TrainParams {
        n_trees: 3,
        tree_size: 10,
        n_threads: 2,
        mode,
        growth: GrowthMethod::Leafwise,
        k: 8,
        deterministic: true,
        // Subtraction changes floating-point association when the cached
        // parent races in ASYNC, so the determinism suites disable it (the
        // membuf test below covers it on the deterministic DP schedule).
        hist_subtraction: false,
        gamma: 0.1,
        ..Default::default()
    }
}

/// Writes `data`'s chunk cache to a unique temp file; the caller removes it.
fn cache_file(data: &PreparedData, rows_per_chunk: usize, tag: &str) -> PathBuf {
    let path = std::env::temp_dir()
        .join(format!("harp_xmem_{}_{}_{tag}.qsc", std::process::id(), data.quantized.n_rows()));
    write_cache(&data.quantized, rows_per_chunk, &path).expect("write cache");
    path
}

#[test]
fn chunked_training_is_bitwise_identical_in_every_mode_and_budget() {
    let data = prepared(harp_data::DatasetKind::HiggsLike, 0.03, 5);
    let qm_bytes = data.quantized.storage_bytes() as u64;
    // Chunks well under the budget: a worker can only scan one chunk at a
    // time, so the budget holds as long as it covers the handful of
    // concurrently-pinned chunks (workers + prefetch), which ~3% chunks do.
    // The floor stays small because the synth split is only a few hundred
    // rows — a 64-row floor would make each chunk a third of the budget.
    let rows_per_chunk = (data.quantized.n_rows() / 32).max(16);
    let path = cache_file(&data, rows_per_chunk, "modes");
    // tiny: ~a quarter of the matrix resident, forcing eviction on every
    // sweep; roomy: everything fits, so after warm-up nothing is evicted.
    let budgets = [("tiny", qm_bytes / 4), ("roomy", 4 * qm_bytes)];
    for mode in [
        ParallelMode::DataParallel,
        ParallelMode::ModelParallel,
        ParallelMode::Sync,
        ParallelMode::Async,
    ] {
        let trainer = GbdtTrainer::new(params(mode)).unwrap();
        let incore = trainer.train_prepared(&data.quantized, &data.train.labels, None);
        let incore_json = incore.model.to_json().unwrap();
        let incore_bits: Vec<u32> =
            incore.model.predict_raw(&data.test.features).iter().map(|p| p.to_bits()).collect();
        for (label, budget) in budgets {
            let store = ChunkedStore::open(&path, budget).expect("open cache");
            let out = trainer.train_store(&store, &data.train.labels, None);
            // ASYNC numbers nodes in task-completion order, so its JSON is
            // schedule-dependent even in-core; the logical model (prediction
            // bits, below) is the bitwise contract there. The batch modes
            // number nodes deterministically and must match structurally.
            if mode != ParallelMode::Async {
                assert_eq!(
                    incore_json,
                    out.model.to_json().unwrap(),
                    "{mode:?}/{label}: chunked model diverged from in-core"
                );
            }
            let bits: Vec<u32> =
                out.model.predict_raw(&data.test.features).iter().map(|p| p.to_bits()).collect();
            assert_eq!(incore_bits, bits, "{mode:?}/{label}: predictions diverged");
            let io = store.io_stats();
            assert!(io.chunk_loads > 0, "{mode:?}/{label}: training never touched the store");
            assert!(
                io.resident_high_water <= budget,
                "{mode:?}/{label}: resident high-water {} exceeds the {budget}-byte budget",
                io.resident_high_water
            );
            match label {
                "tiny" => assert!(
                    io.chunk_evictions > 0,
                    "{mode:?}: a quarter-size budget must evict (loads {})",
                    io.chunk_loads
                ),
                _ => assert_eq!(
                    io.chunk_evictions, 0,
                    "{mode:?}: a roomy budget must keep every chunk resident"
                ),
            }
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn membuf_and_subtraction_survive_the_chunked_path() {
    // MemBuf gradient replicas and parent-minus-sibling histograms are the
    // two scan-order-sensitive features; both must stay bitwise stable when
    // the rows arrive chunk by chunk.
    let data = prepared(harp_data::DatasetKind::AirlineLike, 0.01, 9);
    let path = cache_file(&data, (data.quantized.n_rows() / 8).max(64), "membuf");
    for (use_membuf, hist_subtraction) in [(true, true), (true, false), (false, true)] {
        let p = TrainParams { use_membuf, hist_subtraction, ..params(ParallelMode::DataParallel) };
        let trainer = GbdtTrainer::new(p).unwrap();
        let incore = trainer.train_prepared(&data.quantized, &data.train.labels, None);
        let store = ChunkedStore::open(&path, data.quantized.storage_bytes() as u64 / 4).unwrap();
        let chunked = trainer.train_store(&store, &data.train.labels, None);
        assert_eq!(
            incore.model.to_json().unwrap(),
            chunked.model.to_json().unwrap(),
            "membuf={use_membuf} subtraction={hist_subtraction} diverged"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn prediction_through_the_store_matches_the_monolithic_matrix() {
    let data = prepared(harp_data::DatasetKind::HiggsLike, 0.02, 3);
    let trainer = GbdtTrainer::new(params(ParallelMode::DataParallel)).unwrap();
    let model = trainer.train_prepared(&data.quantized, &data.train.labels, None).model;
    let engine = model.compile();
    let predictor = Predictor::new(&engine);
    let reference = predictor.predict_raw_binned(&data.quantized);
    // The in-core store takes the exact same code path…
    assert_eq!(reference, predictor.predict_raw_store(&data.quantized));
    // …and the chunked store re-scores each row block against its slabs.
    let path = cache_file(&data, (data.quantized.n_rows() / 8).max(64), "predict");
    for budget in [data.quantized.storage_bytes() as u64 / 4, u64::MAX] {
        let store = ChunkedStore::open(&path, budget).unwrap();
        assert_eq!(
            reference,
            predictor.predict_raw_store(&store),
            "chunked prediction diverged at budget {budget}"
        );
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn ledger_reports_the_chunk_gauges_and_io_counters() {
    use harpgbdt::LedgerConfig;
    let data = prepared(harp_data::DatasetKind::HiggsLike, 0.02, 8);
    // Small chunks for the same budget-geometry reason as the modes test:
    // the high-water assertion needs chunks well under a quarter budget.
    let path = cache_file(&data, (data.quantized.n_rows() / 32).max(16), "ledger");
    let budget = data.quantized.storage_bytes() as u64 / 4;
    let store = ChunkedStore::open(&path, budget).unwrap();
    let p = TrainParams { ledger: LedgerConfig::enabled(), ..params(ParallelMode::DataParallel) };
    let out = GbdtTrainer::new(p).unwrap().train_store(&store, &data.train.labels, None);
    let ledger = out.diagnostics.ledger.expect("ledger enabled");
    let last = ledger.records().last().expect("rounds ran");
    let resident = last
        .mem
        .iter()
        .find(|m| m.name == harp_metrics::gauges::CHUNK_RESIDENT)
        .expect("chunk_resident gauge registered for chunked stores");
    assert!(resident.high_water_bytes > 0);
    assert!(
        resident.high_water_bytes <= budget,
        "ledger-reported resident high-water {} exceeds the {budget}-byte budget",
        resident.high_water_bytes
    );
    let quant = last
        .mem
        .iter()
        .find(|m| m.name == harp_metrics::gauges::QUANT_STORE)
        .expect("quant_store gauge registered");
    assert!(quant.high_water_bytes > 0);
    let loads: u64 = ledger
        .records()
        .iter()
        .flat_map(|r| r.counters.iter())
        .filter(|(name, _)| name == "chunk_loads")
        .map(|&(_, v)| v)
        .sum();
    assert!(loads > 0, "per-round counters must carry the chunk traffic");
    std::fs::remove_file(path).ok();
}

#[test]
fn corrupt_caches_fail_with_typed_errors_not_wrong_models() {
    let data = prepared(harp_data::DatasetKind::HiggsLike, 0.01, 2);
    let path = cache_file(&data, (data.quantized.n_rows() / 4).max(64), "corrupt");
    // Flip one byte near the end of the file (inside the last chunk's blob).
    let mut bytes = std::fs::read(&path).unwrap();
    let n = bytes.len();
    bytes[n - 9] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    match ChunkedStore::open(&path, u64::MAX) {
        Err(CacheError::ChecksumMismatch { .. }) => {}
        Err(e) => panic!("expected a checksum mismatch, got {e}"),
        Ok(_) => panic!("a corrupt cache must not open"),
    }
    // A non-cache file fails on the magic, not by reading garbage.
    std::fs::write(&path, b"definitely not a cache file").unwrap();
    assert!(matches!(ChunkedStore::open(&path, u64::MAX), Err(CacheError::BadMagic)));
    std::fs::remove_file(path).ok();
}
