//! Property-based tests over the whole pipeline: random small datasets
//! through binning and training, checking structural invariants that must
//! hold for *any* input.

use harp_binning::{BinningConfig, QuantizedMatrix};
use harp_data::{Dataset, DenseMatrix, FeatureMatrix};
use harpgbdt::{GbdtTrainer, GrowthMethod, ParallelMode, TrainParams};
use proptest::prelude::*;

/// Strategy: a small random dense dataset with optional missing values.
fn small_dataset() -> impl Strategy<Value = Dataset> {
    (2usize..60, 1usize..6, any::<u64>()).prop_map(|(n, m, seed)| {
        // xorshift-ish deterministic fill; proptest drives diversity via
        // (n, m, seed).
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut values = Vec::with_capacity(n * m);
        for _ in 0..n * m {
            let r = next();
            if r % 11 == 0 {
                values.push(f32::NAN);
            } else {
                values.push((r % 1000) as f32 / 1000.0);
            }
        }
        let labels: Vec<f32> = (0..n).map(|_| (next() % 2) as f32).collect();
        Dataset::new("prop", FeatureMatrix::Dense(DenseMatrix::from_vec(n, m, values)), labels)
    })
}

fn quick_params(tree_size: u32, mode: ParallelMode, growth: GrowthMethod) -> TrainParams {
    TrainParams {
        n_trees: 2,
        tree_size,
        mode,
        growth,
        k: 2,
        n_threads: 2,
        gamma: 0.0,
        min_child_weight: 0.0,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Training must never panic and must respect the leaf budget and the
    /// depthwise depth limit, whatever the data looks like.
    #[test]
    fn training_respects_structural_limits(
        data in small_dataset(),
        tree_size in 1u32..5,
        mode_idx in 0usize..4,
        growth_idx in 0usize..2,
    ) {
        let mode = [
            ParallelMode::DataParallel,
            ParallelMode::ModelParallel,
            ParallelMode::Sync,
            ParallelMode::Async,
        ][mode_idx];
        let growth = [GrowthMethod::Leafwise, GrowthMethod::Depthwise][growth_idx];
        let out = GbdtTrainer::new(quick_params(tree_size, mode, growth))
            .unwrap()
            .train(&data);
        for shape in &out.diagnostics.tree_shapes {
            prop_assert!(shape.n_leaves as usize <= 1 << tree_size,
                "leaf budget violated: {} > 2^{tree_size}", shape.n_leaves);
            if growth == GrowthMethod::Depthwise {
                prop_assert!(shape.max_depth <= tree_size,
                    "depth limit violated: {} > {tree_size}", shape.max_depth);
            }
        }
        // Predictions must be finite for every row.
        for p in out.model.predict(&data.features) {
            prop_assert!(p.is_finite());
        }
    }

    /// Quantization must preserve the per-feature value ordering the tree
    /// routing relies on: bin(a) <= bin(b) iff a <= b (up to cut ties).
    #[test]
    fn quantization_preserves_routing_order(data in small_dataset()) {
        let qm = QuantizedMatrix::from_matrix(&data.features, BinningConfig::default());
        for f in 0..data.n_features() {
            let mut pairs: Vec<(f32, u8)> = Vec::new();
            for r in 0..data.n_rows() {
                if let (Some(v), Some(b)) = (data.features.get(r, f), qm.bin(r, f)) {
                    pairs.push((v, b));
                }
            }
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in pairs.windows(2) {
                prop_assert!(w[0].1 <= w[1].1,
                    "feature {f}: value {} got bin {} but larger value {} got bin {}",
                    w[0].0, w[0].1, w[1].0, w[1].1);
            }
        }
    }

    /// A model must predict identically before and after JSON round-trip.
    #[test]
    fn serialization_is_lossless(data in small_dataset()) {
        let out = GbdtTrainer::new(quick_params(3, ParallelMode::DataParallel, GrowthMethod::Leafwise))
            .unwrap()
            .train(&data);
        let back = harpgbdt::GbdtModel::from_json(&out.model.to_json().unwrap()).unwrap();
        prop_assert_eq!(
            out.model.predict_raw(&data.features),
            back.predict_raw(&data.features)
        );
    }

    /// Ensemble predictions decompose as base_score + sum of tree outputs.
    #[test]
    fn prediction_is_additive(data in small_dataset()) {
        let out = GbdtTrainer::new(quick_params(3, ParallelMode::Sync, GrowthMethod::Leafwise))
            .unwrap()
            .train(&data);
        let model = &out.model;
        for r in 0..data.n_rows().min(8) {
            let value = |f: u32| data.features.get(r, f as usize);
            let direct = model.predict_raw_row(value);
            let manual: f32 = model.base_score()
                + model.trees().iter().map(|t| t.predict(value)).sum::<f32>();
            prop_assert!((direct - manual).abs() < 1e-5);
        }
    }
}
