//! Cross-crate end-to-end tests: generators → binning → training →
//! evaluation → persistence, over every dataset shape from the paper.

use harp_baselines::Baseline;
use harp_bench::{harp_params, prepared, run_config};
use harp_data::DatasetKind;
use harpgbdt::{GbdtModel, GbdtTrainer};

#[test]
fn every_dataset_shape_is_learnable() {
    for kind in DatasetKind::ALL {
        // yfcc-like has a tiny base row count (2k); at 0.08 its 16-row test
        // split makes AUC pure seed noise, so give it enough rows for the
        // assertion to measure learning rather than luck.
        let scale = if kind == DatasetKind::YfccLike { 0.3 } else { 0.08 };
        let data = prepared(kind, scale, 5);
        let mut params = harp_params(4, 2);
        params.n_trees = 10;
        let res = run_config(&data, params, false);
        assert!(res.test_auc > 0.60, "{}: held-out AUC only {:.3}", kind.name(), res.test_auc);
    }
}

#[test]
fn harp_beats_baselines_on_no_accuracy_dimension() {
    // The optimization story requires accuracy parity: HarpGBDT's AUC must
    // be within noise of both baselines on the same prepared data.
    let data = prepared(DatasetKind::HiggsLike, 0.1, 9);
    let mut harp = harp_params(5, 2);
    harp.n_trees = 15;
    let harp_res = run_config(&data, harp, false);
    for baseline in [Baseline::XgbLeaf, Baseline::LightGbm] {
        let mut params = baseline.params(5, 2);
        params.n_trees = 15;
        let res = run_config(&data, params, false);
        assert!(
            (harp_res.test_auc - res.test_auc).abs() < 0.03,
            "{}: AUC {:.4} vs harp {:.4}",
            baseline.name(),
            res.test_auc,
            harp_res.test_auc
        );
    }
}

#[test]
fn model_persistence_roundtrip_preserves_predictions() {
    let data = prepared(DatasetKind::AirlineLike, 0.02, 3);
    let mut params = harp_params(4, 2);
    params.n_trees = 5;
    let res = run_config(&data, params, false);
    let json = res.output.model.to_json().expect("serialize");
    let back = GbdtModel::from_json(&json).expect("parse");
    assert_eq!(
        res.output.model.predict_raw(&data.test.features),
        back.predict_raw(&data.test.features)
    );
}

#[test]
fn trainer_accepts_csv_loaded_data() {
    // Loader → trainer integration: write a small CSV, read it back, train.
    let mut csv = String::from("label,f0,f1\n");
    for i in 0..200 {
        let x = (i % 20) as f32 / 20.0;
        let y = ((i * 7) % 13) as f32 / 13.0;
        let label = u8::from(x + 0.3 * y > 0.6);
        csv.push_str(&format!("{label},{x},{y}\n"));
    }
    let data = harp_data::io::read_csv(std::io::Cursor::new(csv), "csv-test").expect("parse csv");
    let params = harpgbdt::TrainParams {
        n_trees: 20,
        tree_size: 3,
        n_threads: 2,
        gamma: 0.0,
        ..Default::default()
    };
    let out = GbdtTrainer::new(params).unwrap().train(&data);
    let preds = out.model.predict(&data.features);
    let auc = harp_metrics::auc(&data.labels, &preds);
    assert!(auc > 0.95, "separable CSV task should be learned: AUC {auc}");
}

#[test]
fn diagnostics_are_consistent_with_model() {
    let data = prepared(DatasetKind::CriteoLike, 0.04, 1);
    let mut params = harp_params(4, 2);
    params.n_trees = 6;
    let res = run_config(&data, params, true);
    let d = &res.output.diagnostics;
    assert_eq!(d.per_tree_secs.len(), res.output.model.n_trees());
    assert_eq!(d.tree_shapes.len(), res.output.model.n_trees());
    let trace = d.trace.as_ref().expect("trace requested");
    assert_eq!(trace.points().len(), res.output.model.n_trees());
    // Trace time is bounded by total training time (eval excluded from both).
    assert!(trace.total_time() <= d.train_secs * 1.0001);
}

#[test]
fn feature_importance_finds_informative_features() {
    // Teacher signals live in the first 32 features; a fat matrix's
    // importance mass must concentrate there.
    let data = prepared(DatasetKind::YfccLike, 0.2, 2);
    let mut params = harp_params(4, 2);
    params.n_trees = 10;
    let res = run_config(&data, params, false);
    let imp = res.output.model.feature_importance();
    let informative: f64 = imp.iter().take(32).map(|i| i.gain).sum();
    let total: f64 = imp.iter().map(|i| i.gain).sum();
    assert!(total > 0.0, "no splits at all");
    // 32 of 4096 features carry signal (0.8% of columns). At this tiny row
    // count noise features still win some splits, so assert strong
    // *enrichment* rather than outright majority: >=10x the uniform share.
    let share = informative / total;
    let uniform = 32.0 / imp.len() as f64;
    assert!(
        share > 10.0 * uniform,
        "informative features got {:.1}% of gain (uniform would be {:.1}%)",
        share * 100.0,
        uniform * 100.0
    );
}
