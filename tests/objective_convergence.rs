//! Ledger-gated convergence tests for the four objective-layer workloads:
//! quantile, Tweedie, Huber, and LambdaMART ranking. Each test trains on
//! its synthetic workload with per-round evaluation and asserts that
//!
//! * the eval metric improves from start to finish and is monotone to a
//!   tolerance (no sustained divergence), and
//! * the final model beats the constant base-score baseline by a fixed
//!   margin (the objective actually learns, not just initializes well);
//!
//! plus a regression gate: two identical-seed runs produce ledgers that
//! `DiffReport` passes at zero tolerance, while a degraded run trips the
//! `eval/last` gate — the property `harpgbdt report --diff` enforces.

use harp_data::{workloads, Dataset};
use harp_metrics::{DiffOptions, DiffReport, RunLedger};
use harpgbdt::trainer::EvalOptions;
use harpgbdt::{GbdtTrainer, LedgerConfig, LossKind, TrainOutput, TrainParams};

fn train_with_ledger(
    loss: LossKind,
    train: &Dataset,
    test: &Dataset,
    n_trees: usize,
    learning_rate: f32,
) -> TrainOutput {
    let params = TrainParams {
        n_trees,
        tree_size: 4,
        learning_rate,
        // The log link puts a pure-zero leaf's optimum at -inf; cap the
        // Newton step as XGBoost recommends for Tweedie-like objectives.
        max_delta_step: if matches!(loss, LossKind::Tweedie { .. }) { 0.7 } else { 0.0 },
        // Pairwise λ-gradients are an order of magnitude smaller than the
        // row-wise losses'; the paper-default γ=1 would freeze growth.
        gamma: if matches!(loss, LossKind::LambdaRank { .. }) { 0.0 } else { 1.0 },
        lambda: if matches!(loss, LossKind::LambdaRank { .. }) { 0.1 } else { 1.0 },
        loss,
        n_threads: 2,
        seed: 7,
        ledger: LedgerConfig::enabled(),
        ..TrainParams::default()
    };
    GbdtTrainer::new(params)
        .expect("valid params")
        .try_train_with_eval(
            train,
            Some(EvalOptions {
                data: test,
                metric: loss.default_metric(),
                every: 1,
                early_stopping_rounds: None,
            }),
        )
        .expect("objective accepts its own workload")
}

/// The eval metric of a constant base-score prediction — the "learned
/// nothing" floor every run must beat.
fn baseline(loss: LossKind, train: &Dataset, test: &Dataset) -> f64 {
    let base = loss.base_scores(&train.labels);
    assert_eq!(base.len(), 1, "these workloads are all scalar");
    let raw = vec![base[0]; test.n_rows()];
    loss.default_metric()
        .compute(&test.labels, &raw, loss, test.query_groups.as_deref())
}

/// Improvement checks shared by all four workloads: the trace must move in
/// the metric's good direction overall and never regress past `tol`
/// relative to the best value seen.
fn assert_converges(out: &TrainOutput, tol: f64) -> f64 {
    let trace = out.diagnostics.trace.as_ref().expect("eval trace recorded");
    let pts = trace.points();
    assert!(pts.len() >= 10, "expected per-round eval, got {} points", pts.len());
    let first = pts[0].metric;
    let last = pts[pts.len() - 1].metric;
    let mut best = first;
    for p in pts {
        if trace.higher_is_better {
            assert!(
                p.metric >= best - tol * (1.0 + best.abs()),
                "round {}: {} fell more than {tol} below the best {best}",
                p.iteration,
                p.metric
            );
            best = best.max(p.metric);
        } else {
            assert!(
                p.metric <= best + tol * (1.0 + best.abs()),
                "round {}: {} rose more than {tol} above the best {best}",
                p.iteration,
                p.metric
            );
            best = best.min(p.metric);
        }
    }
    if trace.higher_is_better {
        assert!(last > first, "metric should improve: first {first}, last {last}");
    } else {
        assert!(last < first, "metric should improve: first {first}, last {last}");
    }
    last
}

#[test]
fn quantile_regression_converges_and_beats_the_base_score() {
    let data = workloads::quantile_regression(8000, 8, 11);
    let (train, test) = data.split(0.25, 11);
    let loss = LossKind::Quantile { alpha: 0.9 };
    // Pinball steps are bounded by lr·|g| ≤ lr (unit Hessian), so reaching
    // the conditional quantile takes more rounds than the smooth losses.
    let out = train_with_ledger(loss, &train, &test, 120, 0.3);
    let last = assert_converges(&out, 0.05);
    let floor = baseline(loss, &train, &test);
    assert!(
        last < floor * 0.95,
        "pinball@0.9 {last} must beat the constant-quantile baseline {floor} by >= 5%"
    );
}

#[test]
fn tweedie_regression_converges_and_beats_the_base_score() {
    let data = workloads::tweedie_claims(4000, 6, 13);
    let (train, test) = data.split(0.25, 13);
    let loss = LossKind::Tweedie { power: 1.5 };
    let out = train_with_ledger(loss, &train, &test, 40, 0.1);
    let last = assert_converges(&out, 0.05);
    let floor = baseline(loss, &train, &test);
    assert!(
        last < floor * 0.99,
        "tweedie deviance {last} must beat the log-mean baseline {floor} by >= 1%"
    );
}

#[test]
fn huber_regression_converges_and_beats_the_base_score() {
    let data = workloads::huber_sensor(4000, 6, 17);
    let (train, test) = data.split(0.25, 17);
    let loss = LossKind::Huber { delta: 1.0 };
    let out = train_with_ledger(loss, &train, &test, 40, 0.3);
    let last = assert_converges(&out, 0.05);
    let floor = baseline(loss, &train, &test);
    assert!(
        last < floor * 0.85,
        "huber@1 {last} must beat the constant-median baseline {floor} by >= 15%"
    );
}

#[test]
fn lambdarank_converges_and_beats_the_base_score() {
    let data = workloads::ranking_queries(150, 20, 6, 19);
    let (train, test) = data.split_queries(0.25, 19);
    let loss = LossKind::LambdaRank { k: 10 };
    let out = train_with_ledger(loss, &train, &test, 40, 0.3);
    let last = assert_converges(&out, 0.05);
    let floor = baseline(loss, &train, &test);
    assert!(
        last > floor * 1.03,
        "ndcg@10 {last} must beat the untrained ordering {floor} by >= 3%"
    );
}

#[test]
fn convergence_ledger_gates_eval_metric_regressions() {
    let data = workloads::quantile_regression(2000, 6, 23);
    let (train, test) = data.split(0.25, 23);
    let loss = LossKind::Quantile { alpha: 0.9 };

    // Two identical-seed runs: the eval stream (and every deterministic
    // ledger metric) must diff clean at zero tolerance.
    let a = train_with_ledger(loss, &train, &test, 20, 0.3);
    let b = train_with_ledger(loss, &train, &test, 20, 0.3);
    let la = a.diagnostics.ledger.as_ref().expect("ledger recorded");
    let lb = b.diagnostics.ledger.as_ref().expect("ledger recorded");
    assert!(
        la.summary().get("eval/last").is_some(),
        "eval metric must flow into the ledger: {:?}",
        la.summary().metrics
    );
    let diff = DiffReport::between(&la.summary(), &lb.summary(), &DiffOptions::default());
    assert!(!diff.failed(), "identical runs must pass the gate:\n{}", diff.render());

    // A degraded run (crippled learning rate) regresses the eval metric;
    // the `eval/last` row must trip the gate.
    let c = train_with_ledger(loss, &train, &test, 20, 0.001);
    let lc = c.diagnostics.ledger.as_ref().expect("ledger recorded");
    let diff = DiffReport::between(&la.summary(), &lc.summary(), &DiffOptions::default());
    assert!(diff.failed(), "eval regression must trip the gate");
    let tripped = diff
        .rows
        .iter()
        .any(|r| r.metric == "eval/last" && r.status == harp_metrics::DiffStatus::Fail);
    assert!(tripped, "eval/last must be a failing row:\n{}", diff.render());

    // Ledgers survive the JSONL round-trip the CLI uses for `report --diff`.
    let path = std::env::temp_dir().join("harp-objective-convergence.jsonl");
    la.write_jsonl(&path).expect("write ledger");
    let reread = RunLedger::read_jsonl(&path).expect("read ledger");
    assert_eq!(reread.summary().get("eval/last"), la.summary().get("eval/last"));
    std::fs::remove_file(&path).ok();
}
