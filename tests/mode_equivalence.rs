//! Cross-crate equivalence: all parallel modes, both baselines, any thread
//! count and any block configuration must train the *same statistical
//! model* — they only differ in scheduling.

use harp_baselines::Baseline;
use harp_bench::prepared;
use harp_data::DatasetKind;
use harpgbdt::{BlockConfig, GbdtTrainer, GrowthMethod, ParallelMode, TrainParams};

fn params_t1() -> TrainParams {
    TrainParams {
        n_trees: 4,
        tree_size: 4,
        n_threads: 1,
        hist_subtraction: false,
        gamma: 0.1,
        growth: GrowthMethod::Leafwise,
        k: 1,
        ..Default::default()
    }
}

#[test]
fn every_scheduler_is_bitwise_identical_at_one_thread() {
    // Single thread + no subtraction: histogram accumulation order is the
    // ascending row order in every scheduler => identical models.
    let data = prepared(DatasetKind::HiggsLike, 0.03, 7);
    let mut reference: Option<Vec<f32>> = None;
    let mut configs: Vec<(String, TrainParams)> = vec![
        ("harp-dp".into(), TrainParams { mode: ParallelMode::DataParallel, ..params_t1() }),
        ("harp-mp".into(), TrainParams { mode: ParallelMode::ModelParallel, ..params_t1() }),
        ("harp-sync".into(), TrainParams { mode: ParallelMode::Sync, ..params_t1() }),
    ];
    for b in [Baseline::XgbLeaf, Baseline::LightGbm] {
        let mut p = b.params(4, 1);
        p.n_trees = 4;
        p.hist_subtraction = false;
        p.gamma = 0.1;
        configs.push((b.name().into(), p));
    }
    for (name, params) in configs {
        let out = GbdtTrainer::new(params).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        let preds = out.model.predict_raw(&data.test.features);
        match &reference {
            None => reference = Some(preds),
            Some(r) => assert_eq!(r, &preds, "{name} diverged from the reference model"),
        }
    }
}

#[test]
fn block_configuration_never_changes_the_model_multithreaded_mp() {
    // MP accumulates per cell in ascending row order regardless of blocks
    // and thread count => bitwise identical even at T=4.
    let data = prepared(DatasetKind::AirlineLike, 0.01, 2);
    let mk = |blocks: BlockConfig| TrainParams {
        mode: ParallelMode::ModelParallel,
        n_threads: 4,
        blocks,
        ..params_t1()
    };
    let reference = GbdtTrainer::new(mk(BlockConfig::default()))
        .unwrap()
        .train_prepared(&data.quantized, &data.train.labels, None)
        .model
        .predict_raw(&data.test.features);
    for blocks in [
        BlockConfig { row_blk_size: 0, node_blk_size: 4, feature_blk_size: 1, bin_blk_size: 0 },
        BlockConfig { row_blk_size: 0, node_blk_size: 0, feature_blk_size: 3, bin_blk_size: 16 },
        BlockConfig { row_blk_size: 0, node_blk_size: 2, feature_blk_size: 0, bin_blk_size: 7 },
    ] {
        let out = GbdtTrainer::new(mk(blocks)).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        assert_eq!(
            reference,
            out.model.predict_raw(&data.test.features),
            "blocks {blocks:?} changed the model"
        );
    }
}

#[test]
fn async_and_sync_agree_when_gain_limits_growth() {
    let data = prepared(DatasetKind::HiggsLike, 0.02, 4);
    let mk = |mode| TrainParams {
        mode,
        n_threads: 4,
        k: 8,
        tree_size: 10,
        gamma: 1.0, // growth stops on gain, not on the leaf budget
        n_trees: 3,
        hist_subtraction: false,
        ..params_t1()
    };
    let sync = GbdtTrainer::new(mk(ParallelMode::Sync)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    let asy = GbdtTrainer::new(mk(ParallelMode::Async)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    let ps = sync.model.predict_raw(&data.test.features);
    let pa = asy.model.predict_raw(&data.test.features);
    for i in 0..ps.len() {
        assert!((ps[i] - pa[i]).abs() < 1e-3, "row {i}: SYNC {} vs ASYNC {}", ps[i], pa[i]);
    }
}

#[test]
fn deterministic_mode_is_stable_across_repeats_and_models_match() {
    let data = prepared(DatasetKind::CriteoLike, 0.02, 6);
    let params = TrainParams { n_threads: 4, deterministic: true, k: 8, n_trees: 3, ..params_t1() };
    let runs: Vec<String> = (0..3)
        .map(|_| {
            GbdtTrainer::new(params.clone())
                .unwrap()
                .train_prepared(&data.quantized, &data.train.labels, None)
                .model
                .to_json()
                .unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn sparse_and_dense_schedulers_agree_on_yfcc() {
    let data = prepared(DatasetKind::YfccLike, 0.05, 8);
    let dp = GbdtTrainer::new(TrainParams { mode: ParallelMode::DataParallel, ..params_t1() })
        .unwrap()
        .train_prepared(&data.quantized, &data.train.labels, None);
    let mp = GbdtTrainer::new(TrainParams { mode: ParallelMode::ModelParallel, ..params_t1() })
        .unwrap()
        .train_prepared(&data.quantized, &data.train.labels, None);
    assert_eq!(
        dp.model.predict_raw(&data.test.features),
        mp.model.predict_raw(&data.test.features),
        "CSR row scans and CSC column scans must produce the same model"
    );
}
