//! Cross-crate equivalence: all parallel modes, both baselines, any thread
//! count and any block configuration must train the *same statistical
//! model* — they only differ in scheduling.
//!
//! The property battery at the bottom goes further: under a configuration
//! where per-cell accumulation order is pinned (deterministic static DP
//! schedule, one row chunk per node, no histogram subtraction), all four
//! modes must grow **bitwise identical** trees on random dense/sparse data
//! with missing values, across MemBuf on/off and K ∈ {1, 4, 32}.

use harp_baselines::Baseline;
use harp_bench::prepared;
use harp_data::{CsrMatrix, Dataset, DatasetKind, DenseMatrix, FeatureMatrix};
use harpgbdt::{BlockConfig, GbdtTrainer, GrowthMethod, ParallelMode, TrainParams, Tree};
use proptest::prelude::*;

fn params_t1() -> TrainParams {
    TrainParams {
        n_trees: 4,
        tree_size: 4,
        n_threads: 1,
        hist_subtraction: false,
        gamma: 0.1,
        growth: GrowthMethod::Leafwise,
        k: 1,
        ..Default::default()
    }
}

#[test]
fn every_scheduler_is_bitwise_identical_at_one_thread() {
    // Single thread + no subtraction: histogram accumulation order is the
    // ascending row order in every scheduler => identical models.
    let data = prepared(DatasetKind::HiggsLike, 0.03, 7);
    let mut reference: Option<Vec<f32>> = None;
    let mut configs: Vec<(String, TrainParams)> = vec![
        ("harp-dp".into(), TrainParams { mode: ParallelMode::DataParallel, ..params_t1() }),
        ("harp-mp".into(), TrainParams { mode: ParallelMode::ModelParallel, ..params_t1() }),
        ("harp-sync".into(), TrainParams { mode: ParallelMode::Sync, ..params_t1() }),
    ];
    for b in [Baseline::XgbLeaf, Baseline::LightGbm] {
        let mut p = b.params(4, 1);
        p.n_trees = 4;
        p.hist_subtraction = false;
        p.gamma = 0.1;
        configs.push((b.name().into(), p));
    }
    for (name, params) in configs {
        let out = GbdtTrainer::new(params).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        let preds = out.model.predict_raw(&data.test.features);
        match &reference {
            None => reference = Some(preds),
            Some(r) => assert_eq!(r, &preds, "{name} diverged from the reference model"),
        }
    }
}

#[test]
fn block_configuration_never_changes_the_model_multithreaded_mp() {
    // MP accumulates per cell in ascending row order regardless of blocks
    // and thread count => bitwise identical even at T=4.
    let data = prepared(DatasetKind::AirlineLike, 0.01, 2);
    let mk = |blocks: BlockConfig| TrainParams {
        mode: ParallelMode::ModelParallel,
        n_threads: 4,
        blocks,
        ..params_t1()
    };
    let reference = GbdtTrainer::new(mk(BlockConfig::default()))
        .unwrap()
        .train_prepared(&data.quantized, &data.train.labels, None)
        .model
        .predict_raw(&data.test.features);
    for blocks in [
        BlockConfig { row_blk_size: 0, node_blk_size: 4, feature_blk_size: 1, bin_blk_size: 0 },
        BlockConfig { row_blk_size: 0, node_blk_size: 0, feature_blk_size: 3, bin_blk_size: 16 },
        BlockConfig { row_blk_size: 0, node_blk_size: 2, feature_blk_size: 0, bin_blk_size: 7 },
    ] {
        let out = GbdtTrainer::new(mk(blocks)).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        assert_eq!(
            reference,
            out.model.predict_raw(&data.test.features),
            "blocks {blocks:?} changed the model"
        );
    }
}

#[test]
fn async_and_sync_agree_when_gain_limits_growth() {
    let data = prepared(DatasetKind::HiggsLike, 0.02, 4);
    let mk = |mode| TrainParams {
        mode,
        n_threads: 4,
        k: 8,
        tree_size: 10,
        gamma: 1.0, // growth stops on gain, not on the leaf budget
        n_trees: 3,
        hist_subtraction: false,
        ..params_t1()
    };
    let sync = GbdtTrainer::new(mk(ParallelMode::Sync)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    let asy = GbdtTrainer::new(mk(ParallelMode::Async)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    let ps = sync.model.predict_raw(&data.test.features);
    let pa = asy.model.predict_raw(&data.test.features);
    for i in 0..ps.len() {
        assert!((ps[i] - pa[i]).abs() < 1e-3, "row {i}: SYNC {} vs ASYNC {}", ps[i], pa[i]);
    }
}

#[test]
fn deterministic_mode_is_stable_across_repeats_and_models_match() {
    let data = prepared(DatasetKind::CriteoLike, 0.02, 6);
    let params = TrainParams { n_threads: 4, deterministic: true, k: 8, n_trees: 3, ..params_t1() };
    let runs: Vec<String> = (0..3)
        .map(|_| {
            GbdtTrainer::new(params.clone())
                .unwrap()
                .train_prepared(&data.quantized, &data.train.labels, None)
                .model
                .to_json()
                .unwrap()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}

#[test]
fn sparse_and_dense_schedulers_agree_on_yfcc() {
    let data = prepared(DatasetKind::YfccLike, 0.05, 8);
    let dp = GbdtTrainer::new(TrainParams { mode: ParallelMode::DataParallel, ..params_t1() })
        .unwrap()
        .train_prepared(&data.quantized, &data.train.labels, None);
    let mp = GbdtTrainer::new(TrainParams { mode: ParallelMode::ModelParallel, ..params_t1() })
        .unwrap()
        .train_prepared(&data.quantized, &data.train.labels, None);
    assert_eq!(
        dp.model.predict_raw(&data.test.features),
        mp.model.predict_raw(&data.test.features),
        "CSR row scans and CSC column scans must produce the same model"
    );
}

// ---------------------------------------------------------------------------
// Property battery: bitwise mode equivalence on random data.
//
// Recipe for a bitwise-comparable configuration:
//  * `deterministic: true`       — static DP task→replica schedule;
//  * `hist_subtraction: false`   — both children built from rows, never by
//    parent-minus-sibling (subtraction changes the summation expression);
//  * `row_blk_size: 1 << 28`     — one row chunk per (node, feature-range)
//    task, so DP accumulates each cell in ascending row order exactly like
//    MP's per-cell column scan and ASYNC's serial whole-node scan (chunked
//    rows would regroup the f64 sums: (a+b)+(c+d) != ((a+b)+c)+d);
//  * `gamma: 0.1`, big `tree_size` — growth stops on gain, never on the
//    leaf budget, so the grown split-set is order-independent even though
//    the four modes expand nodes in different orders.
// Node ids then differ only by expansion order, so models are compared via
// a canonical recursive dump plus bitwise predictions.

/// Depth-first canonical encoding of a tree: split identity (bitwise) for
/// internal nodes, leaf weight bits for leaves. Independent of node ids.
fn canonical_dump(tree: &Tree, id: u32, out: &mut Vec<u64>) {
    let node = tree.node(id);
    match (&node.split, node.is_leaf()) {
        (Some(s), false) => {
            out.push(1);
            out.push(u64::from(s.feature));
            out.push(u64::from(s.bin));
            out.push(u64::from(s.default_left));
            out.push(u64::from(s.threshold.to_bits()));
            out.push(s.gain.to_bits());
            canonical_dump(tree, node.left, out);
            canonical_dump(tree, node.right, out);
        }
        _ => {
            out.push(0);
            out.push(u64::from(node.weight.to_bits()));
        }
    }
}

/// Random dense or sparse dataset with missing values, xorshift-filled so a
/// failing case reproduces from `(n, m, seed, sparse)` alone.
fn random_dataset() -> impl Strategy<Value = Dataset> {
    (8usize..80, 2usize..6, any::<u64>(), any::<bool>()).prop_map(|(n, m, seed, sparse)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let labels: Vec<f32> = (0..n).map(|_| (next() % 2) as f32).collect();
        let features = if sparse {
            let rows: Vec<Vec<(u32, f32)>> = (0..n)
                .map(|_| {
                    (0..m as u32)
                        .filter_map(|c| {
                            let r = next();
                            // ~60% fill; absent cells are the missing values.
                            (r % 5 < 3).then(|| (c, ((r >> 8) % 1000) as f32 / 500.0 - 1.0))
                        })
                        .collect()
                })
                .collect();
            FeatureMatrix::Sparse(CsrMatrix::from_rows(m, &rows))
        } else {
            let values: Vec<f32> = (0..n * m)
                .map(|_| {
                    let r = next();
                    if r % 11 == 0 {
                        f32::NAN // explicit missing values in the dense path
                    } else {
                        (r % 1000) as f32 / 500.0 - 1.0
                    }
                })
                .collect();
            FeatureMatrix::Dense(DenseMatrix::from_vec(n, m, values))
        };
        Dataset::new("prop", features, labels)
    })
}

fn bitwise_params(mode: ParallelMode, use_membuf: bool, k: usize) -> TrainParams {
    TrainParams {
        n_trees: 2,
        tree_size: 12,
        n_threads: 2,
        mode,
        growth: GrowthMethod::Leafwise,
        k,
        use_membuf,
        deterministic: true,
        hist_subtraction: false,
        gamma: 0.1,
        blocks: BlockConfig { row_blk_size: 1 << 28, ..BlockConfig::default() },
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DP / MP / SYNC / ASYNC, MemBuf on/off, K in {1, 4, 32}: all 24
    /// configurations grow bitwise-identical trees and predictions.
    #[test]
    fn all_modes_are_bitwise_identical_on_random_data(data in random_dataset()) {
        let mut reference: Option<(Vec<Vec<u64>>, Vec<u32>)> = None;
        for mode in [
            ParallelMode::DataParallel,
            ParallelMode::ModelParallel,
            ParallelMode::Sync,
            ParallelMode::Async,
        ] {
            for use_membuf in [true, false] {
                for k in [1usize, 4, 32] {
                    let out = GbdtTrainer::new(bitwise_params(mode, use_membuf, k))
                        .unwrap()
                        .train(&data);
                    let dumps: Vec<Vec<u64>> = out
                        .model
                        .trees()
                        .iter()
                        .map(|t| {
                            let mut v = Vec::new();
                            canonical_dump(t, 0, &mut v);
                            v
                        })
                        .collect();
                    let pred_bits: Vec<u32> = out
                        .model
                        .predict_raw(&data.features)
                        .iter()
                        .map(|p| p.to_bits())
                        .collect();
                    match &reference {
                        None => reference = Some((dumps, pred_bits)),
                        Some((ref_dumps, ref_bits)) => {
                            prop_assert!(
                                ref_dumps == &dumps,
                                "trees diverged: {:?} membuf={} k={}", mode, use_membuf, k
                            );
                            prop_assert!(
                                ref_bits == &pred_bits,
                                "predictions diverged: {:?} membuf={} k={}", mode, use_membuf, k
                            );
                        }
                    }
                }
            }
        }
    }
}
