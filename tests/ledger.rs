//! End-to-end run-ledger tests: train with the ledger on, check one record
//! per round with sensible deltas and non-zero memory high-water marks, and
//! round-trip the ledger through the JSON-lines file format.

use harp_bench::{harp_params, prepared};
use harp_data::DatasetKind;
use harp_metrics::{gauges, DiffOptions, DiffReport, RunLedger};
use harpgbdt::trainer::{EvalMetric, EvalOptions};
use harpgbdt::{GbdtTrainer, LedgerConfig, ParallelMode, TraceConfig, TrainParams};

fn ledger_run(mut params: TrainParams, with_eval: bool) -> (RunLedger, usize) {
    let data = prepared(DatasetKind::HiggsLike, 0.03, 7);
    params.ledger = LedgerConfig::enabled();
    let trainer = GbdtTrainer::new(params).expect("valid params");
    let eval = with_eval.then_some(EvalOptions {
        data: &data.test,
        metric: EvalMetric::Auc,
        every: 1,
        early_stopping_rounds: None,
    });
    let out = trainer.train_prepared(&data.quantized, &data.train.labels, eval);
    let n_trees = out.model.n_trees();
    (out.diagnostics.ledger.expect("ledger enabled"), n_trees)
}

fn small_params() -> TrainParams {
    let mut p = harp_params(5, 2);
    p.n_trees = 6;
    p
}

#[test]
fn one_record_per_round_with_phase_and_counter_deltas() {
    let (ledger, n_trees) = ledger_run(small_params(), true);
    assert_eq!(ledger.len(), 6, "one record per boosting round");
    assert_eq!(n_trees, 6);
    let mut prev_elapsed = 0.0;
    for (i, r) in ledger.records().iter().enumerate() {
        assert_eq!(r.round, i as u64 + 1);
        assert!(r.round_secs > 0.0, "round {} took no time?", r.round);
        assert!(r.elapsed_secs > prev_elapsed, "elapsed must be cumulative");
        prev_elapsed = r.elapsed_secs;
        // Every round builds histograms; its phase delta must be non-zero.
        let build = r
            .phase_secs
            .iter()
            .find(|(n, _)| n == "build_hist")
            .map(|(_, v)| *v)
            .expect("build_hist phase present");
        assert!(build > 0.0, "round {} has no BuildHist time", r.round);
        // Counter deltas are per-round: regions are created every round, so
        // a whole-run (double-counted) read would grow with the round index.
        let regions = r.counters.iter().find(|(n, _)| n == "regions").map(|(_, v)| *v).unwrap_or(0);
        assert!(regions > 0, "round {} shows no parallel regions", r.round);
        assert!(r.eval_metric.is_some(), "eval ran every round");
        assert!(r.n_leaves >= 2);
        assert!(r.mean_k_per_pop >= 1.0, "effective K below 1 in round {}", r.round);
    }
    // Per-round region counts must be roughly flat, not cumulative.
    let first = ledger.records()[0].counters.iter().find(|(n, _)| n == "regions").unwrap().1 as f64;
    let last = ledger.records()[5].counters.iter().find(|(n, _)| n == "regions").unwrap().1 as f64;
    assert!(last < first * 3.0, "per-round counter looks cumulative: first {first}, last {last}");
}

#[test]
fn memory_gauges_report_nonzero_high_water() {
    let (ledger, _) = ledger_run(small_params(), true);
    let last = ledger.records().last().expect("records");
    let hw = |name: &str| {
        last.mem
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("gauge {name} missing"))
            .high_water_bytes
    };
    assert!(hw(gauges::HIST_POOL) > 0, "hist pool allocated nothing?");
    assert!(hw(gauges::SCRATCH_ARENA) > 0, "DP replica arena allocated nothing?");
    assert!(hw(gauges::MEMBUF) > 0, "membuf on but gauge zero");
    assert!(hw(gauges::PARTITION) > 0);
    assert!(hw(gauges::FLAT_FOREST) > 0, "eval compiles a flat tree every round");
    // MemBuf holds two GradPair replicas per row.
    let data = prepared(DatasetKind::HiggsLike, 0.03, 7);
    assert_eq!(hw(gauges::MEMBUF), 2 * data.train.n_rows() as u64 * 8);
}

#[test]
fn membuf_off_zeroes_the_membuf_gauge() {
    let mut p = small_params();
    p.use_membuf = false;
    let (ledger, _) = ledger_run(p, false);
    let last = ledger.records().last().expect("records");
    let membuf = last.mem.iter().find(|m| m.name == gauges::MEMBUF).expect("gauge");
    assert_eq!(membuf.high_water_bytes, 0);
    assert!(last.eval_metric.is_none(), "no eval set attached");
}

#[test]
fn trace_enriches_records_with_skew_and_queue_counters() {
    let mut p = small_params();
    p.trace = TraceConfig::enabled();
    p.mode = ParallelMode::Async;
    let (ledger, _) = ledger_run(p, false);
    let has_queue = ledger
        .records()
        .iter()
        .any(|r| r.counters.iter().any(|(n, v)| n == "queue_pops" && *v > 0));
    assert!(has_queue, "ASYNC training with trace on must count queue pops");
    assert!(
        ledger.records().iter().any(|r| !r.skew.is_empty()),
        "trace on must produce per-round skew rows"
    );
}

#[test]
fn ledger_file_roundtrip_and_self_diff() {
    let (ledger, _) = ledger_run(small_params(), true);
    let path = std::env::temp_dir().join("harp_e2e_ledger.jsonl");
    ledger.write_jsonl(&path).expect("write");
    let text = std::fs::read_to_string(&path).expect("read back");
    assert_eq!(text.lines().count(), ledger.len(), "one JSON line per round");
    let back = RunLedger::read_jsonl(&path).expect("parse");
    std::fs::remove_file(&path).ok();
    assert_eq!(back, ledger);
    // A run diffed against itself passes at zero tolerance.
    let diff = DiffReport::between(&ledger.summary(), &back.summary(), &DiffOptions::default());
    assert!(!diff.failed());
    assert!(!diff.warned());
}

#[test]
fn records_carry_plan_stats() {
    let (ledger, _) = ledger_run(small_params(), false);
    for r in ledger.records() {
        assert!(r.plan.batches > 0, "round {} planned no batches", r.round);
        assert!(r.plan.tasks > 0, "round {} planned no tasks", r.round);
        assert!(r.plan.tasks >= r.plan.batches, "every batch has at least one task");
        assert!(r.plan.node_blk > 0, "resolved extents must be recorded");
        assert!(r.plan.feature_blk > 0);
        assert!(!r.plan.auto, "explicit config must not be flagged auto");
    }
    // The plan/ metric family lands in the summary for report --diff gating.
    let summary = ledger.summary();
    let get = |name: &str| {
        summary
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN)
    };
    assert!(get("plan/tasks") > 0.0);
    assert!(get("plan/batches") > 0.0);
    assert_eq!(get("plan/auto"), 0.0);
}

#[test]
fn auto_blocks_train_comparably_and_mark_the_ledger() {
    // BlockConfig::Auto must flag every round's plan stats and train to the
    // same quality as the default config (the cost model only re-blocks the
    // same arithmetic; accuracy is untouched up to K-batch ordering).
    let mut auto = small_params();
    auto.blocks = harpgbdt::BlockConfig::Auto;
    let (ledger, _) = ledger_run(auto, true);
    for r in ledger.records() {
        assert!(r.plan.auto, "round {} lost the auto flag", r.round);
        assert!(r.plan.batches > 0 && r.plan.tasks > 0);
    }
    let auc_of = |l: &RunLedger| l.records().last().unwrap().eval_metric.expect("eval ran");
    let (default_ledger, _) = ledger_run(small_params(), true);
    let (a, d) = (auc_of(&ledger), auc_of(&default_ledger));
    assert!((a - d).abs() < 0.02, "auto blocks changed eval quality: auto {a} vs default {d}");
}

#[test]
fn identical_seeds_produce_identical_deterministic_metrics() {
    let (a, _) = ledger_run(small_params(), true);
    let (b, _) = ledger_run(small_params(), true);
    // Timing differs run to run; the deterministic metric families must not.
    let diff = DiffReport::between(&a.summary(), &b.summary(), &DiffOptions::default());
    for row in diff.rows.iter().filter(|r| {
        r.metric.starts_with("counter/") && !r.metric.ends_with("_ns") && !r.metric.contains("wall")
            || r.metric.starts_with("tree/")
            || r.metric.starts_with("eval/")
            || r.metric.starts_with("plan/")
    }) {
        assert!(
            row.rel_delta == 0.0,
            "deterministic metric {} drifted: {} vs {}",
            row.metric,
            row.a,
            row.b
        );
    }
}
