//! Growth-policy semantics across the stack: TopK vs classic methods,
//! budgets, depth limits, and the synchronization-count claims.
//!
//! The TopK boundary battery at the bottom pins Algorithm 1's corner cases:
//! K=1 degenerates to classic best-first leafwise, K at or above the level
//! width degenerates depthwise to whole-level expansion, and intermediate K
//! never passes over a higher-gain candidate that sits in the same pop.

use harp_bench::prepared;
use harp_data::DatasetKind;
use harpgbdt::growth::{GrowthQueue, RankedCandidate};
use harpgbdt::split::SplitCandidate;
use harpgbdt::{GbdtTrainer, GrowthMethod, NodeStats, ParallelMode, SplitData, TrainParams};
use proptest::prelude::*;

fn base() -> TrainParams {
    TrainParams {
        n_trees: 3,
        n_threads: 2,
        gamma: 0.0,
        hist_subtraction: false,
        ..Default::default()
    }
}

#[test]
fn leafwise_topk_k1_equals_classic_leafwise_tree_shapes() {
    let data = prepared(DatasetKind::HiggsLike, 0.03, 1);
    // k=1 IS classic leafwise; verify against an independent construction
    // path (depth-unlimited, budget-limited) by checking budget adherence
    // and that shapes match across two identical configs.
    let mk = || TrainParams { growth: GrowthMethod::Leafwise, k: 1, tree_size: 5, ..base() };
    let a =
        GbdtTrainer::new(mk())
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    let b =
        GbdtTrainer::new(mk())
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    for (sa, sb) in a.diagnostics.tree_shapes.iter().zip(&b.diagnostics.tree_shapes) {
        assert_eq!(sa.n_leaves, sb.n_leaves);
        assert_eq!(sa.max_depth, sb.max_depth);
        assert!(sa.n_leaves <= 32);
    }
}

#[test]
fn topk_leaf_budget_is_exact_when_gain_allows() {
    // With gamma=0 on a rich dataset, trees should grow to exactly 2^D
    // leaves for every K.
    let data = prepared(DatasetKind::Synset, 0.05, 2);
    for k in [1usize, 7, 32] {
        let params = TrainParams { growth: GrowthMethod::Leafwise, k, tree_size: 4, ..base() };
        let out = GbdtTrainer::new(params).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        for s in &out.diagnostics.tree_shapes {
            assert_eq!(s.n_leaves, 16, "K={k}: expected a full 16-leaf tree");
        }
    }
}

#[test]
fn depthwise_k_variants_build_identical_trees() {
    // Fig. 6(a): depthwise TopK selects level subsets, same final tree.
    let data = prepared(DatasetKind::AirlineLike, 0.008, 3);
    let mk = |k: usize| TrainParams {
        growth: GrowthMethod::Depthwise,
        k,
        tree_size: 4,
        n_threads: 1,
        ..base()
    };
    let full =
        GbdtTrainer::new(mk(0))
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    for k in [1usize, 3, 5] {
        let sub = GbdtTrainer::new(mk(k)).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        assert_eq!(
            full.model.predict_raw(&data.test.features),
            sub.model.predict_raw(&data.test.features),
            "depthwise K={k} built a different tree"
        );
    }
}

#[test]
fn larger_k_means_fewer_synchronizations() {
    // The enabling claim of TopK (§IV-D): node_blk_size H cuts the for-loop
    // count from L to L/H; K batches similarly cut growth rounds.
    let data = prepared(DatasetKind::Synset, 0.05, 4);
    let regions = |k: usize| {
        let params = TrainParams {
            growth: GrowthMethod::Leafwise,
            k,
            tree_size: 6,
            mode: ParallelMode::DataParallel,
            ..base()
        };
        GbdtTrainer::new(params)
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None)
            .diagnostics
            .profile
            .regions
    };
    let r1 = regions(1);
    let r32 = regions(32);
    assert!(r32 * 4 < r1, "K=32 should slash synchronization counts: K1={r1} vs K32={r32}");
}

#[test]
fn async_mode_trades_barriers_for_lock_traffic() {
    let data = prepared(DatasetKind::Synset, 0.05, 5);
    let run = |mode| {
        let params = TrainParams {
            growth: GrowthMethod::Leafwise,
            k: 32,
            tree_size: 7,
            mode,
            n_threads: 4,
            ..base()
        };
        GbdtTrainer::new(params)
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None)
    };
    let dp = run(ParallelMode::DataParallel);
    let asy = run(ParallelMode::Async);
    assert!(
        asy.diagnostics.profile.regions < dp.diagnostics.profile.regions,
        "ASYNC must use fewer fork/join regions: {} vs {}",
        asy.diagnostics.profile.regions,
        dp.diagnostics.profile.regions
    );
    // And it must still build full trees.
    for s in &asy.diagnostics.tree_shapes {
        assert!(s.n_leaves > 64, "ASYNC tree stunted: {} leaves", s.n_leaves);
    }
}

#[test]
fn min_child_weight_prunes_thin_leaves() {
    let data = prepared(DatasetKind::CriteoLike, 0.04, 6);
    let leaves = |mcw: f64| {
        let params = TrainParams {
            growth: GrowthMethod::Leafwise,
            k: 1,
            tree_size: 7,
            min_child_weight: mcw,
            ..base()
        };
        let out = GbdtTrainer::new(params).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        out.diagnostics.tree_shapes.iter().map(|s| s.n_leaves as usize).sum::<usize>()
    };
    let loose = leaves(1.0);
    let strict = leaves(50.0);
    assert!(strict < loose, "min_child_weight=50 should shrink trees: {strict} vs {loose}");
}

// ---------------------------------------------------------------------------
// TopK boundary battery.

fn split_cand(gain: f64) -> SplitCandidate {
    SplitCandidate {
        split: SplitData { feature: 0, bin: 0, threshold: 0.0, default_left: false, gain },
        left: NodeStats::default(),
        right: NodeStats::default(),
    }
}

/// Random candidate pool with deliberately coarse gains (so ties are common)
/// and shallow depths (so depthwise levels hold several nodes).
fn candidate_pool() -> impl Strategy<Value = Vec<(f64, u32)>> {
    proptest::collection::vec((0u8..8, 0u32..4), 1..40)
        .prop_map(|v| v.into_iter().map(|(g, d)| (f64::from(g) * 0.5, d)).collect())
}

#[test]
fn leafwise_huge_k_matches_depthwise_when_gain_limits_growth() {
    // K >= 2^depth boundary: once every queued candidate fits in one pop,
    // leafwise TopK expands whole frontiers exactly like depthwise. With
    // growth stopped by gain (never by the leaf budget or the depthwise
    // depth limit), the two methods must build the same trees.
    let data = prepared(DatasetKind::HiggsLike, 0.02, 9);
    let mk = |growth, k| TrainParams {
        growth,
        k,
        tree_size: 10, // depthwise depth limit; gain must stop growth first
        gamma: 1.0,
        n_trees: 3,
        n_threads: 2,
        hist_subtraction: false,
        ..Default::default()
    };
    let leaf = GbdtTrainer::new(mk(GrowthMethod::Leafwise, 1 << 10)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    let depth = GbdtTrainer::new(mk(GrowthMethod::Depthwise, 0)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    for s in &leaf.diagnostics.tree_shapes {
        assert!(
            s.max_depth < 10,
            "precondition broken: gain did not stop growth before the depth limit"
        );
    }
    assert_eq!(
        leaf.model.predict_raw(&data.test.features),
        depth.model.predict_raw(&data.test.features),
        "leafwise K >= 2^depth must degenerate to depthwise growth"
    );
}

#[test]
fn depthwise_k_at_level_width_equals_unbounded_k() {
    // The other side of the boundary, checked at the model level: K = 2^D
    // can never truncate a level (levels hold at most 2^D nodes), so it must
    // match K = 0 (pop whole levels) exactly.
    let data = prepared(DatasetKind::AirlineLike, 0.008, 10);
    let mk = |k| TrainParams {
        growth: GrowthMethod::Depthwise,
        k,
        tree_size: 4,
        n_trees: 3,
        n_threads: 2,
        gamma: 0.0,
        hist_subtraction: false,
        ..Default::default()
    };
    let bounded = GbdtTrainer::new(mk(1 << 4)).unwrap().train_prepared(
        &data.quantized,
        &data.train.labels,
        None,
    );
    let unbounded =
        GbdtTrainer::new(mk(0))
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    assert_eq!(
        bounded.model.predict_raw(&data.test.features),
        unbounded.model.predict_raw(&data.test.features),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K=1 boundary: draining a leafwise queue one pop at a time is classic
    /// best-first growth — gains come out non-increasing, and equal gains
    /// come out in push (FIFO) order.
    #[test]
    fn leafwise_k1_drains_best_first_with_fifo_ties(pool in candidate_pool()) {
        let mut q = GrowthQueue::new(GrowthMethod::Leafwise);
        for (i, &(gain, depth)) in pool.iter().enumerate() {
            q.push(i as u32, depth, split_cand(gain));
        }
        let mut popped: Vec<RankedCandidate> = Vec::new();
        loop {
            let batch = q.pop_batch(1, usize::MAX);
            prop_assert!(batch.len() <= 1);
            match batch.into_iter().next() {
                Some(c) => popped.push(c),
                None => break,
            }
        }
        prop_assert_eq!(popped.len(), pool.len());
        for w in popped.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                a.cand.split.gain >= b.cand.split.gain,
                "gain order violated: {} before {}", a.cand.split.gain, b.cand.split.gain
            );
            if a.cand.split.gain == b.cand.split.gain {
                // Node id doubles as push order above.
                prop_assert!(a.node < b.node, "FIFO tie-break violated: {} before {}", a.node, b.node);
            }
        }
    }

    /// K >= level width boundary at the queue level: a depthwise pop sized
    /// to the shallowest level returns exactly that level, best gain first.
    #[test]
    fn depthwise_pop_at_level_width_takes_whole_shallowest_level(pool in candidate_pool()) {
        let mut q = GrowthQueue::new(GrowthMethod::Depthwise);
        for (i, &(gain, depth)) in pool.iter().enumerate() {
            q.push(i as u32, depth, split_cand(gain));
        }
        let min_depth = pool.iter().map(|&(_, d)| d).min().unwrap();
        let width = pool.iter().filter(|&&(_, d)| d == min_depth).count();
        let batch = q.pop_batch(width, usize::MAX);
        prop_assert_eq!(batch.len(), width);
        for c in &batch {
            prop_assert!(
                c.depth == min_depth,
                "pop sized to the level width must not reach into depth {}", c.depth
            );
        }
        for rest in q.drain() {
            prop_assert!(rest.depth > min_depth, "left a depth-{} node behind", rest.depth);
        }
    }

    /// Intermediate K never passes over a better sibling: every candidate
    /// left in the queue with the same depth key ranks at or below the worst
    /// member of the pop (gain, with FIFO ties).
    #[test]
    fn intermediate_k_never_skips_a_higher_gain_candidate(
        pool in candidate_pool(),
        k in 1usize..8,
        depthwise in any::<bool>(),
    ) {
        let method = if depthwise { GrowthMethod::Depthwise } else { GrowthMethod::Leafwise };
        let mut q = GrowthQueue::new(method);
        for (i, &(gain, depth)) in pool.iter().enumerate() {
            q.push(i as u32, depth, split_cand(gain));
        }
        let batch = q.pop_batch(k, usize::MAX);
        prop_assert_eq!(batch.len(), k.min(pool.len()));
        // The frontier the pop was competing against: leafwise ranks the
        // whole queue together; depthwise ranks within a level.
        let same_level = |c: &RankedCandidate, d: u32| !depthwise || c.depth == d;
        let deepest_popped = batch.iter().map(|c| c.depth).max().unwrap_or(0);
        let worst = batch
            .iter()
            .filter(|c| same_level(c, deepest_popped))
            .map(|c| (c.cand.split.gain, c.node))
            .fold((f64::INFINITY, 0u32), |(g, n), (cg, cn)| if cg < g { (cg, cn) } else { (g, n) });
        for rest in q.drain() {
            if depthwise {
                // Nothing shallower than the deepest popped node may remain.
                prop_assert!(
                    rest.depth >= deepest_popped,
                    "unexpanded depth-{} node outranks the depth-{} pop", rest.depth, deepest_popped
                );
            }
            if same_level(&rest, deepest_popped) {
                prop_assert!(
                    rest.cand.split.gain <= worst.0,
                    "left gain {} queued while the pop kept gain {}", rest.cand.split.gain, worst.0
                );
                if rest.cand.split.gain == worst.0 {
                    prop_assert!(
                        rest.node > worst.1,
                        "FIFO tie-break: queued node {} outranks popped node {}", rest.node, worst.1
                    );
                }
            }
        }
    }
}
