//! Growth-policy semantics across the stack: TopK vs classic methods,
//! budgets, depth limits, and the synchronization-count claims.

use harp_bench::prepared;
use harp_data::DatasetKind;
use harpgbdt::{GbdtTrainer, GrowthMethod, ParallelMode, TrainParams};

fn base() -> TrainParams {
    TrainParams {
        n_trees: 3,
        n_threads: 2,
        gamma: 0.0,
        hist_subtraction: false,
        ..Default::default()
    }
}

#[test]
fn leafwise_topk_k1_equals_classic_leafwise_tree_shapes() {
    let data = prepared(DatasetKind::HiggsLike, 0.03, 1);
    // k=1 IS classic leafwise; verify against an independent construction
    // path (depth-unlimited, budget-limited) by checking budget adherence
    // and that shapes match across two identical configs.
    let mk = || TrainParams { growth: GrowthMethod::Leafwise, k: 1, tree_size: 5, ..base() };
    let a =
        GbdtTrainer::new(mk())
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    let b =
        GbdtTrainer::new(mk())
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    for (sa, sb) in a.diagnostics.tree_shapes.iter().zip(&b.diagnostics.tree_shapes) {
        assert_eq!(sa.n_leaves, sb.n_leaves);
        assert_eq!(sa.max_depth, sb.max_depth);
        assert!(sa.n_leaves <= 32);
    }
}

#[test]
fn topk_leaf_budget_is_exact_when_gain_allows() {
    // With gamma=0 on a rich dataset, trees should grow to exactly 2^D
    // leaves for every K.
    let data = prepared(DatasetKind::Synset, 0.05, 2);
    for k in [1usize, 7, 32] {
        let params = TrainParams { growth: GrowthMethod::Leafwise, k, tree_size: 4, ..base() };
        let out = GbdtTrainer::new(params).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        for s in &out.diagnostics.tree_shapes {
            assert_eq!(s.n_leaves, 16, "K={k}: expected a full 16-leaf tree");
        }
    }
}

#[test]
fn depthwise_k_variants_build_identical_trees() {
    // Fig. 6(a): depthwise TopK selects level subsets, same final tree.
    let data = prepared(DatasetKind::AirlineLike, 0.008, 3);
    let mk = |k: usize| TrainParams {
        growth: GrowthMethod::Depthwise,
        k,
        tree_size: 4,
        n_threads: 1,
        ..base()
    };
    let full =
        GbdtTrainer::new(mk(0))
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None);
    for k in [1usize, 3, 5] {
        let sub = GbdtTrainer::new(mk(k)).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        assert_eq!(
            full.model.predict_raw(&data.test.features),
            sub.model.predict_raw(&data.test.features),
            "depthwise K={k} built a different tree"
        );
    }
}

#[test]
fn larger_k_means_fewer_synchronizations() {
    // The enabling claim of TopK (§IV-D): node_blk_size H cuts the for-loop
    // count from L to L/H; K batches similarly cut growth rounds.
    let data = prepared(DatasetKind::Synset, 0.05, 4);
    let regions = |k: usize| {
        let params = TrainParams {
            growth: GrowthMethod::Leafwise,
            k,
            tree_size: 6,
            mode: ParallelMode::DataParallel,
            ..base()
        };
        GbdtTrainer::new(params)
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None)
            .diagnostics
            .profile
            .regions
    };
    let r1 = regions(1);
    let r32 = regions(32);
    assert!(r32 * 4 < r1, "K=32 should slash synchronization counts: K1={r1} vs K32={r32}");
}

#[test]
fn async_mode_trades_barriers_for_lock_traffic() {
    let data = prepared(DatasetKind::Synset, 0.05, 5);
    let run = |mode| {
        let params = TrainParams {
            growth: GrowthMethod::Leafwise,
            k: 32,
            tree_size: 7,
            mode,
            n_threads: 4,
            ..base()
        };
        GbdtTrainer::new(params)
            .unwrap()
            .train_prepared(&data.quantized, &data.train.labels, None)
    };
    let dp = run(ParallelMode::DataParallel);
    let asy = run(ParallelMode::Async);
    assert!(
        asy.diagnostics.profile.regions < dp.diagnostics.profile.regions,
        "ASYNC must use fewer fork/join regions: {} vs {}",
        asy.diagnostics.profile.regions,
        dp.diagnostics.profile.regions
    );
    // And it must still build full trees.
    for s in &asy.diagnostics.tree_shapes {
        assert!(s.n_leaves > 64, "ASYNC tree stunted: {} leaves", s.n_leaves);
    }
}

#[test]
fn min_child_weight_prunes_thin_leaves() {
    let data = prepared(DatasetKind::CriteoLike, 0.04, 6);
    let leaves = |mcw: f64| {
        let params = TrainParams {
            growth: GrowthMethod::Leafwise,
            k: 1,
            tree_size: 7,
            min_child_weight: mcw,
            ..base()
        };
        let out = GbdtTrainer::new(params).unwrap().train_prepared(
            &data.quantized,
            &data.train.labels,
            None,
        );
        out.diagnostics.tree_shapes.iter().map(|s| s.n_leaves as usize).sum::<usize>()
    };
    let loose = leaves(1.0);
    let strict = leaves(50.0);
    assert!(strict < loose, "min_child_weight=50 should shrink trees: {strict} vs {loose}");
}
