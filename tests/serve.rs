//! Concurrency and protocol battery for the online scoring service.
//!
//! Four pillars, mirroring the serving design's hazards:
//!
//! * **Protocol**: proptest round-trips of every frame type and a
//!   malformed-input battery against a live server — hostile bytes get a
//!   typed error or a clean close, never a panic or a hang.
//! * **Hot swap**: concurrent scoring threads during repeated model swaps;
//!   every response is bitwise-identical to exactly one of the two models
//!   (a torn forest would produce a third value), and no request is lost.
//! * **Micro-batch window**: with an injected manual clock, a lone request
//!   holds until the window deadline passes, and a full batch flushes
//!   without any clock movement.
//! * **Admission control**: a deliberately tiny queue sheds with typed
//!   `Overloaded` responses under a pipelined flood while a well-behaved
//!   client keeps getting prompt answers.

use harp_data::{DatasetKind, DenseMatrix, FeatureMatrix, SynthConfig};
use harp_serve::protocol::{
    parse_header, read_frame, write_frame, Frame, RowsPayload, DEFAULT_MAX_PAYLOAD, HEADER_LEN,
};
use harp_serve::{
    serve, serve_with_clock, ErrorCode, ManualClock, ScoreReply, ServeClient, ServeConfig,
};
use harpgbdt::predict::BinRows;
use harpgbdt::{FlatForest, GbdtTrainer, GrowthMethod, Predictor, TrainParams};
use proptest::prelude::*;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Trains a small HIGGS-like forest; different `(seed, trees)` give
/// models whose scores differ on essentially every row.
fn train_forest(seed: u64, trees: usize) -> FlatForest {
    let data = SynthConfig::new(DatasetKind::HiggsLike, seed).with_scale(0.02).generate();
    let params = TrainParams {
        n_trees: trees,
        tree_size: 4,
        growth: GrowthMethod::Leafwise,
        k: 8,
        n_threads: 1,
        ..TrainParams::default()
    };
    GbdtTrainer::new(params).expect("valid params").train(&data).model.compile()
}

/// Deterministic dense rows (same LCG family as the bench generator).
fn dense_rows(n_rows: usize, n_cols: usize, seed: u64) -> Vec<f32> {
    let mut s = seed | 1;
    (0..n_rows * n_cols)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) % 4000) as f32 / 1000.0 - 2.0
        })
        .collect()
}

fn bin_rows(n_rows: usize, n_cols: usize, seed: u64) -> Vec<u8> {
    let mut s = seed | 1;
    (0..n_rows * n_cols)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) % 64) as u8
        })
        .collect()
}

/// Reference scores for raw dense rows via the local predictor.
fn local_dense_scores(forest: &FlatForest, n_cols: usize, values: &[f32]) -> Vec<f32> {
    let n_rows = values.len() / n_cols;
    let m = FeatureMatrix::Dense(DenseMatrix::from_vec(n_rows, n_cols, values.to_vec()));
    Predictor::new(forest).predict_raw(&m)
}

// ---------------------------------------------------------------------------
// Protocol: proptest round-trips and no-panic guarantees.

/// Printable-ASCII string from arbitrary bytes (Reload paths must be
/// UTF-8; Error/StatsReply text is free-form).
fn ascii(bytes: &[u8]) -> String {
    bytes.iter().map(|b| (b % 94 + 32) as char).collect()
}

/// Builds one of the 12 frame shapes from flat generated ingredients (the
/// vendored proptest has no `prop_oneof`, so variant choice is a selector
/// byte and the raw pools are truncated to the drawn dimensions).
fn build_frame(
    sel: u8,
    corr: u32,
    dims: (usize, usize),
    f32_pool: Vec<f32>,
    byte_pool: Vec<u8>,
    aux: u64,
) -> Frame {
    let (n_cols, n_rows) = dims;
    let need = n_cols * n_rows;
    match sel % 12 {
        0 => Frame::Score {
            corr,
            rows: RowsPayload::Dense {
                n_cols: n_cols as u32,
                values: f32_pool.iter().cycle().take(need).copied().collect(),
            },
        },
        1 => Frame::Score {
            corr,
            rows: RowsPayload::Binned {
                n_cols: n_cols as u32,
                bins: byte_pool.iter().cycle().take(need).copied().collect(),
            },
        },
        2 => Frame::Ping { corr },
        3 => Frame::Reload { corr, path: None },
        4 => Frame::Reload { corr, path: Some(ascii(&byte_pool[..byte_pool.len() % 40])) },
        5 => Frame::Stats { corr },
        6 => Frame::Shutdown { corr },
        7 => {
            let n_groups = (aux % 3 + 1) as usize;
            let len = f32_pool.len() - f32_pool.len() % n_groups;
            Frame::Scores { corr, n_groups: n_groups as u32, scores: f32_pool[..len].to_vec() }
        }
        8 => Frame::Error {
            corr,
            code: ErrorCode::from_u16((aux % 8 + 1) as u16).expect("valid code"),
            message: ascii(&byte_pool),
        },
        9 => Frame::Pong { corr },
        10 => Frame::ReloadOk { corr, generation: aux },
        _ => Frame::StatsReply { corr, json: ascii(&byte_pool) },
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        any::<u8>(),
        any::<u32>(),
        (1usize..6, 1usize..5),
        proptest::collection::vec(any::<f32>(), 20..21),
        proptest::collection::vec(any::<u8>(), 20..21),
        any::<u64>(),
    )
        .prop_map(|(sel, corr, dims, f32s, bytes, aux)| {
            build_frame(sel, corr, dims, f32s, bytes, aux)
        })
}

proptest! {
    /// Every frame survives encode → header parse → decode bitwise (byte
    /// comparison, so `NaN` payloads count as equal).
    #[test]
    fn every_frame_round_trips(frame in arb_frame()) {
        let bytes = frame.encode();
        let header: [u8; HEADER_LEN] =
            bytes[..HEADER_LEN].try_into().expect("header slice");
        let h = parse_header(&header, DEFAULT_MAX_PAYLOAD).expect("header parses");
        prop_assert_eq!(h.payload_len as usize, bytes.len() - HEADER_LEN);
        let back = Frame::decode(h.frame_type, h.corr, &bytes[HEADER_LEN..])
            .expect("payload decodes");
        prop_assert_eq!(back.corr(), frame.corr());
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Truncating a valid frame's payload at any point never panics the
    /// decoder — it either errors or parses a shorter-but-valid payload.
    #[test]
    fn truncated_payloads_never_panic(frame in arb_frame(), cut in 0usize..200) {
        let bytes = frame.encode();
        let payload = &bytes[HEADER_LEN..];
        let cut = cut.min(payload.len());
        let header: [u8; HEADER_LEN] =
            bytes[..HEADER_LEN].try_into().expect("header slice");
        let h = parse_header(&header, DEFAULT_MAX_PAYLOAD).expect("header parses");
        let _ = Frame::decode(h.frame_type, h.corr, &payload[..cut]);
    }

    /// Arbitrary header bytes never panic the parser, and non-HG magic is
    /// always rejected.
    #[test]
    fn arbitrary_headers_never_panic(raw in proptest::collection::vec(any::<u8>(), 12..13)) {
        let bytes: [u8; HEADER_LEN] = raw.as_slice().try_into().expect("12 bytes");
        let parsed = parse_header(&bytes, DEFAULT_MAX_PAYLOAD);
        if &bytes[..2] != b"HG" {
            prop_assert!(parsed.is_err());
        }
    }
}

// ---------------------------------------------------------------------------
// Live server: malformed battery, shapes, equivalence, stats.

#[test]
fn malformed_battery_against_live_server() {
    let forest = train_forest(1, 4);
    let n_features = forest.n_features() as u32;
    let mut h = serve(forest, ServeConfig::default()).expect("start server");
    let passed =
        harp_serve::battery::run_battery(h.local_addr(), n_features).expect("battery green");
    assert!(passed.len() >= 10, "battery should cover at least 10 hostile cases: {passed:?}");
    // The server survived every case and still answers cleanly.
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");
    client.ping().expect("server alive after battery");
    h.shutdown();
    h.wait();
}

#[test]
fn wrong_shapes_get_typed_rejections() {
    let forest = train_forest(2, 4);
    let n_features = forest.n_features();
    let cfg = ServeConfig { max_rows_per_req: 128, ..ServeConfig::default() };
    let mut h = serve(forest, cfg).expect("start server");
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");

    // Narrower than the model: silent misrouting guarded by a typed error.
    let narrow = client
        .score_dense((n_features - 1) as u32, dense_rows(4, n_features - 1, 7))
        .expect("io ok");
    assert!(
        matches!(narrow, ScoreReply::Rejected { code: ErrorCode::BadShape, .. }),
        "narrow rows must be BadShape, got {narrow:?}"
    );

    // Oversized request: bounced before touching the queue.
    let oversize = client
        .score_dense(n_features as u32, dense_rows(129, n_features, 7))
        .expect("io ok");
    assert!(
        matches!(oversize, ScoreReply::Rejected { code: ErrorCode::BadShape, .. }),
        "over-limit rows must be BadShape, got {oversize:?}"
    );

    // Wider than the model is fine (extra columns ignored), matching the
    // offline predictor contract.
    let wide = client
        .score_dense((n_features + 3) as u32, dense_rows(4, n_features + 3, 7))
        .expect("io");
    assert!(matches!(wide, ScoreReply::Scores { .. }), "wider rows must score, got {wide:?}");
    h.shutdown();
    h.wait();
}

#[test]
fn served_scores_match_local_predictor_dense_and_binned() {
    let forest = train_forest(3, 6);
    let n_features = forest.n_features();
    let n_rows = 37;
    let mut h = serve(forest.clone(), ServeConfig::default()).expect("start server");
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");

    let values = dense_rows(n_rows, n_features, 11);
    match client.score_dense(n_features as u32, values.clone()).expect("io ok") {
        ScoreReply::Scores { scores, .. } => {
            let expect = local_dense_scores(&forest, n_features, &values);
            assert_eq!(scores, expect, "served dense scores must match the local predictor");
        }
        other => panic!("dense request rejected: {other:?}"),
    }

    let bins = bin_rows(n_rows, n_features, 13);
    match client.score_binned(n_features as u32, bins.clone()).expect("io ok") {
        ScoreReply::Scores { scores, .. } => {
            let rows = BinRows::new(n_rows, n_features, &bins);
            let expect = Predictor::new(&forest).predict_raw_bin_rows(&rows);
            assert_eq!(scores, expect, "served binned scores must match the local predictor");
        }
        other => panic!("binned request rejected: {other:?}"),
    }
    h.shutdown();
    h.wait();
}

#[test]
fn stats_frame_reports_counters_and_shape() {
    let forest = train_forest(4, 4);
    let n_features = forest.n_features();
    let mut h = serve(forest, ServeConfig::default()).expect("start server");
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");
    for i in 0..5 {
        let reply = client
            .score_dense(n_features as u32, dense_rows(8, n_features, i))
            .expect("io ok");
        assert!(matches!(reply, ScoreReply::Scores { .. }));
    }
    let snap = client.stats().expect("stats reply parses");
    assert_eq!(snap.n_features as usize, n_features);
    assert_eq!(snap.generation, 1);
    assert!(snap.requests >= 5, "admitted requests counted: {snap:?}");
    assert!(snap.rows >= 40, "admitted rows counted: {snap:?}");
    assert!(snap.batches >= 1, "batches dispatched: {snap:?}");
    // Telemetry fields: uptime, the queue gauge, and per-phase histograms.
    assert!(snap.uptime_secs.is_some_and(|u| u > 0.0), "uptime reported: {snap:?}");
    assert!(snap.queue_depth.is_some(), "queue gauge reported: {snap:?}");
    for phase in harp_serve::PHASE_HIST_NAMES {
        let hist = snap.latency.get(phase).unwrap_or_else(|| panic!("{phase} histogram missing"));
        assert!(hist.count() >= 1, "{phase} histogram recorded samples: {snap:?}");
    }
    let e2e = snap.latency.get("end_to_end").expect("e2e histogram");
    assert!(e2e.quantile(0.99) >= e2e.quantile(0.5), "quantiles are monotone");
    h.shutdown();
    h.wait();
}

#[test]
fn metrics_endpoint_serves_prometheus_exposition() {
    use std::io::{Read as _, Write as _};
    let forest = train_forest(12, 4);
    let n_features = forest.n_features();
    let cfg = ServeConfig { metrics_addr: Some("127.0.0.1:0".into()), ..ServeConfig::default() };
    let mut h = serve(forest, cfg).expect("start server");
    let metrics_addr = h.metrics_addr().expect("metrics endpoint bound");

    // Generate traffic so every phase histogram has samples.
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");
    for i in 0..5 {
        let reply = client
            .score_dense(n_features as u32, dense_rows(8, n_features, i))
            .expect("io ok");
        assert!(matches!(reply, ScoreReply::Scores { .. }));
    }

    // Raw-TCP scrape: a plain HTTP/1.1 GET, no client library.
    let scrape = |path: &str| -> String {
        let mut s = TcpStream::connect(metrics_addr).expect("connect metrics");
        write!(s, "GET {path} HTTP/1.1\r\nHost: harp\r\nConnection: close\r\n\r\n")
            .expect("write request");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read response");
        response
    };
    let response = scrape("/metrics");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "scrape status: {response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "exposition content type: {response}"
    );
    for family in [
        "harp_serve_requests_total",
        "harp_serve_queue_depth",
        "harp_serve_uptime_seconds",
        "# TYPE harp_serve_phase_latency_seconds histogram",
        "harp_serve_request_latency_seconds_bucket",
    ] {
        assert!(response.contains(family), "missing {family:?} in scrape:\n{response}");
    }
    for phase in ["queue_wait", "assemble", "predict", "write"] {
        let needle = format!("harp_serve_phase_latency_seconds_bucket{{phase=\"{phase}\"");
        assert!(response.contains(&needle), "missing {needle:?} in scrape:\n{response}");
    }
    // Anything else 404s without wedging the endpoint.
    assert!(scrape("/nope").starts_with("HTTP/1.1 404"));
    assert!(scrape("/metrics").starts_with("HTTP/1.1 200 OK"), "endpoint survives a 404");

    h.shutdown();
    h.wait();
}

#[test]
fn serve_ledger_round_trips_latency_histograms() {
    let dir = std::env::temp_dir().join(format!("harp_serve_ledger_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ledger_path = dir.join("serve-ledger.jsonl");
    let forest = train_forest(13, 4);
    let n_features = forest.n_features();
    let cfg = ServeConfig {
        ledger_out: Some(ledger_path.clone()),
        ledger_every_batches: 1,
        ..ServeConfig::default()
    };
    let mut h = serve(forest, cfg).expect("start server");
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");
    for i in 0..4 {
        let reply = client
            .score_dense(n_features as u32, dense_rows(8, n_features, i))
            .expect("io ok");
        assert!(matches!(reply, ScoreReply::Scores { .. }));
    }
    drop(client);
    h.shutdown();
    h.wait();

    let ledger = harp_metrics::RunLedger::read_jsonl(&ledger_path).expect("ledger parses");
    assert!(!ledger.records().is_empty(), "serve ledger has epochs");
    let mut merged = harp_metrics::LatencySet::default();
    for r in ledger.records() {
        merged.merge(&r.latency);
    }
    let predict = merged.get("predict").expect("predict histogram in ledger");
    assert!(predict.count() >= 1, "epoch deltas carried samples");
    // The summary exposes tail metrics the diff gate can regress on.
    let summary = ledger.summary();
    assert!(
        summary.metrics.iter().any(|(name, _)| name == "latency/predict/p99_ns"),
        "summary emits latency quantile metrics: {:?}",
        summary.metrics.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Hot swap under concurrent load.

#[test]
fn hot_swap_every_response_is_exactly_one_model_bitwise() {
    let forest_a = train_forest(5, 4);
    let forest_b = train_forest(6, 9); // different seed AND depth: scores differ
    let n_features = forest_a.n_features();
    const ROWS: usize = 16;
    let values = dense_rows(ROWS, n_features, 99);
    let expect_a = local_dense_scores(&forest_a, n_features, &values);
    let expect_b = local_dense_scores(&forest_b, n_features, &values);
    assert_ne!(expect_a, expect_b, "the two models must disagree on the probe rows");

    let mut h = serve(forest_a.clone(), ServeConfig::default()).expect("start server");
    let addr = h.local_addr();

    const SCORERS: usize = 4;
    const REQS: usize = 150;
    let scorers: Vec<_> = (0..SCORERS)
        .map(|_| {
            let (values, expect_a, expect_b) = (values.clone(), expect_a.clone(), expect_b.clone());
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect scorer");
                let (mut from_a, mut from_b) = (0usize, 0usize);
                for _ in 0..REQS {
                    match client.score_dense(n_features as u32, values.clone()).expect("io ok") {
                        ScoreReply::Scores { scores, .. } => {
                            // Bitwise: a torn forest (half-swapped trees)
                            // would produce a third vector.
                            if scores == expect_a {
                                from_a += 1;
                            } else if scores == expect_b {
                                from_b += 1;
                            } else {
                                panic!("response matches neither model bitwise");
                            }
                        }
                        other => panic!("request rejected during swap: {other:?}"),
                    }
                }
                (from_a, from_b)
            })
        })
        .collect();

    // Swap from this thread (the slot borrow must not outlive the server
    // handle): flip between the two models until every scorer finishes.
    let mut swaps = 0u64;
    while scorers.iter().any(|s| !s.is_finished()) {
        h.slot().swap(if swaps % 2 == 0 { forest_b.clone() } else { forest_a.clone() });
        swaps += 1;
        std::thread::sleep(Duration::from_micros(500));
    }

    let mut total_a = 0;
    let mut total_b = 0;
    for s in scorers {
        let (a, b) = s.join().expect("scorer panicked");
        total_a += a;
        total_b += b;
    }
    // No request lost: every one of the SCORERS*REQS requests was answered
    // (the loop above would have panicked or timed out otherwise).
    assert_eq!(total_a + total_b, SCORERS * REQS);
    assert!(swaps > 10, "swapper should have cycled many times, did {swaps}");
    assert!(
        total_a > 0 && total_b > 0,
        "both generations must be observed (a={total_a}, b={total_b})"
    );
    h.shutdown();
    h.wait();
}

#[test]
fn reload_frame_installs_model_from_disk() {
    let dir = std::env::temp_dir().join(format!("harp_serve_reload_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let model_path = dir.join("model.json");

    let data = SynthConfig::new(DatasetKind::HiggsLike, 8).with_scale(0.02).generate();
    let out_a = GbdtTrainer::new(TrainParams {
        n_trees: 3,
        tree_size: 4,
        n_threads: 1,
        ..TrainParams::default()
    })
    .expect("valid params")
    .train(&data);
    let out_b = GbdtTrainer::new(TrainParams {
        n_trees: 7,
        tree_size: 4,
        n_threads: 1,
        ..TrainParams::default()
    })
    .expect("valid params")
    .train(&data);

    let forest_b = out_b.model.compile();
    let n_features = forest_b.n_features();
    let values = dense_rows(8, n_features, 21);
    let expect_b = local_dense_scores(&forest_b, n_features, &values);

    let mut h = serve(out_a.model.compile(), ServeConfig::default()).expect("start server");
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");

    // Reload against a missing file: typed failure, old model keeps serving.
    let missing = client
        .reload(Some(dir.join("nope.json").to_str().expect("utf8 path")))
        .expect("io ok");
    assert!(
        matches!(missing, Err((ErrorCode::ReloadFailed, _))),
        "missing file must be ReloadFailed, got {missing:?}"
    );

    out_b.model.save(&model_path).expect("save model B");
    let gen = client
        .reload(Some(model_path.to_str().expect("utf8 path")))
        .expect("io ok")
        .expect("reload succeeds");
    assert_eq!(gen, 2, "second generation installed");

    match client.score_dense(n_features as u32, values).expect("io ok") {
        ScoreReply::Scores { scores, .. } => {
            assert_eq!(scores, expect_b, "post-reload scores must come from the new model");
        }
        other => panic!("request rejected after reload: {other:?}"),
    }
    h.shutdown();
    h.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Micro-batch window with an injected clock.

#[test]
fn batch_window_holds_until_manual_deadline() {
    let forest = train_forest(9, 3);
    let n_features = forest.n_features();
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        window_us: 1_000_000, // 1s of *manual* time: never expires on its own
        max_batch_rows: 1 << 20,
        ..ServeConfig::default()
    };
    let mut h = serve_with_clock(forest, cfg, Arc::new(clock.clone())).expect("start server");

    let mut stream = TcpStream::connect(h.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let rows =
        RowsPayload::Dense { n_cols: n_features as u32, values: dense_rows(4, n_features, 3) };
    write_frame(&mut stream, &Frame::Score { corr: 1, rows }).expect("write");

    // Under-full batch, deadline not reached: no reply may arrive.
    stream.set_read_timeout(Some(Duration::from_millis(300))).expect("timeout");
    match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD) {
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut => {}
        other => panic!("batch must hold until the window expires, got {other:?}"),
    }

    // Advance past the window: the held batch flushes.
    clock.advance(Duration::from_secs(2).as_nanos() as u64);
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    match read_frame(&mut stream, DEFAULT_MAX_PAYLOAD).expect("read") {
        Some(Frame::Scores { corr, .. }) => assert_eq!(corr, 1),
        other => panic!("expected Scores after deadline, got {other:?}"),
    }
    h.shutdown();
    h.wait();
}

#[test]
fn full_batch_flushes_without_clock_movement() {
    let forest = train_forest(10, 3);
    let n_features = forest.n_features();
    let clock = ManualClock::new();
    let cfg = ServeConfig {
        window_us: 1_000_000,
        max_batch_rows: 8, // one 8-row request fills the batch
        ..ServeConfig::default()
    };
    let mut h = serve_with_clock(forest, cfg, Arc::new(clock.clone())).expect("start server");
    let mut client = ServeClient::connect(h.local_addr()).expect("connect");
    let reply = client
        .score_dense(n_features as u32, dense_rows(8, n_features, 5))
        .expect("io ok");
    assert!(
        matches!(reply, ScoreReply::Scores { .. }),
        "a full batch must flush immediately even with a frozen clock: {reply:?}"
    );
    h.shutdown();
    h.wait();
}

// ---------------------------------------------------------------------------
// Admission control under saturation.

#[test]
fn saturation_sheds_typed_while_polite_client_stays_served() {
    let forest = train_forest(11, 4);
    let n_features = forest.n_features();
    let cfg = ServeConfig {
        queue_depth: 2,
        window_us: 2_000,
        max_batch_rows: 1 << 20,
        threads: 1,
        ..ServeConfig::default()
    };
    let mut h = serve(forest, cfg).expect("start server");
    let addr = h.local_addr();

    const FLOODERS: usize = 6;
    const BURST: usize = 16;
    const BURSTS: usize = 3;
    const ROWS: usize = 256;
    let flooders: Vec<_> = (0..FLOODERS)
        .map(|f| {
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect flooder");
                let (mut admitted, mut shed) = (0usize, 0usize);
                for b in 0..BURSTS {
                    for r in 0..BURST {
                        let rows = RowsPayload::Dense {
                            n_cols: n_features as u32,
                            values: dense_rows(ROWS, n_features, (f * 1000 + b * 100 + r) as u64),
                        };
                        let corr = (b * BURST + r) as u32 + 1;
                        write_frame(client.stream_mut(), &Frame::Score { corr, rows })
                            .expect("write burst");
                    }
                    for _ in 0..BURST {
                        match read_frame(client.stream_mut(), DEFAULT_MAX_PAYLOAD).expect("read") {
                            Some(Frame::Scores { .. }) => admitted += 1,
                            Some(Frame::Error { code: ErrorCode::Overloaded, .. }) => shed += 1,
                            other => {
                                panic!("overload reply must be Scores or Overloaded: {other:?}")
                            }
                        }
                    }
                }
                (admitted, shed)
            })
        })
        .collect();

    // A polite closed-loop client during the flood: every round trip must
    // complete within its (generous) timeout — shed or served, never
    // stalled. This is the "p99 of admitted requests stays bounded" claim
    // in its non-flaky form.
    let polite = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect polite");
        for i in 0..20 {
            let reply = client
                .score_dense(n_features as u32, dense_rows(4, n_features, i))
                .expect("io ok");
            match reply {
                ScoreReply::Scores { .. } => {}
                ScoreReply::Rejected { code: ErrorCode::Overloaded, .. } => {}
                other => panic!("polite client got an untyped reply: {other:?}"),
            }
        }
    });

    let mut total_admitted = 0;
    let mut total_shed = 0;
    for fh in flooders {
        let (a, s) = fh.join().expect("flooder panicked");
        total_admitted += a;
        total_shed += s;
    }
    polite.join().expect("polite client panicked");

    assert_eq!(total_admitted + total_shed, FLOODERS * BURST * BURSTS, "no reply lost");
    assert!(total_shed > 0, "queue depth 2 must shed under a pipelined flood");
    assert!(total_admitted > 0, "some requests must still be admitted");
    // The polite client's shed replies count too, so the server's counter
    // is at least the flooders' tally.
    let snap = h.snapshot();
    assert!(snap.sheds >= total_shed as u64, "server counted every shed: {snap:?}");
    h.shutdown();
    h.wait();
}
