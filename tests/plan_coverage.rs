//! BlockPlan coverage properties.
//!
//! The plan layer is only correct if its task enumeration *partitions* the
//! ⟨row, node, feature, bin⟩ cube: every cell of one BuildHist batch must be
//! written by exactly one task (exclusive/MP) or touched exactly once per
//! replica pass (replicated/DP — each task accumulates privately, so "once"
//! means once across the whole enumeration; the reduction merges replicas).
//! These properties drive random shapes and block configs — including the
//! `0 = unlimited` sentinel, the sparse whole-feature special case, zero-row
//! jobs, and `BlockConfig::Auto` — through the shared enumerator.

use harpgbdt::plan::feature_blocks;
use harpgbdt::{Accumulation, BatchShape, BlockConfig, BlockPlan, BlockTask, ScanLayout};
use proptest::prelude::*;

/// An extent as users write it: 0 = unlimited, small explicit values, and a
/// value larger than any dimension in these cases.
const EXTENTS: [usize; 8] = [0, 1, 2, 3, 5, 7, 16, 1000];

/// Random explicit configs plus the Auto sentinel (drawn when the first
/// index hits the out-of-range value).
fn config() -> impl Strategy<Value = BlockConfig> {
    (0usize..9, 0usize..8, 0usize..8, 0usize..8).prop_map(|(r, n, f, b)| {
        if r == 8 {
            BlockConfig::Auto
        } else {
            BlockConfig {
                row_blk_size: EXTENTS[r],
                node_blk_size: EXTENTS[n],
                feature_blk_size: EXTENTS[f],
                bin_blk_size: EXTENTS[b].min(256),
            }
        }
    })
}

fn shape_and_jobs() -> impl Strategy<Value = (BatchShape, Vec<usize>)> {
    (1usize..12, 0usize..4, 1usize..32, 1usize..8, prop::collection::vec(0usize..60, 1..6))
        .prop_map(|(m, lay, max_bins, threads, jobs)| {
            let layout = match lay {
                0 => ScanLayout::DenseU8,
                1 => ScanLayout::DenseU4,
                2 => ScanLayout::Bundled { n_storage_cols: (m / 2).max(1) },
                _ => ScanLayout::Sparse,
            };
            (
                BatchShape {
                    n_features: m,
                    layout,
                    max_bins,
                    total_bins: m * max_bins,
                    n_threads: threads,
                },
                jobs,
            )
        })
}

/// Every live ⟨job, feature, row⟩ cell exactly once; zero-row jobs skipped
/// entirely (their replica lanes would only add zeroes).
fn check_replicated(plan: &BlockPlan, shape: &BatchShape, job_lens: &[usize]) {
    let m = shape.n_features;
    let mut seen = vec![0u32; job_lens.len() * m * 60];
    for task in plan.tasks() {
        assert_eq!(task.jobs.len(), 1, "DP tasks are single-job");
        let j = task.jobs.start;
        assert!(job_lens[j] > 0, "zero-row job {j} must be skipped");
        assert!(task.bins.is_none(), "DP never bin-blocks");
        if !shape.layout.feature_sliceable() {
            assert_eq!(task.features, 0..m, "unsliceable rows are scanned whole");
        }
        let rows = task.row_range_for(job_lens[j]);
        assert_eq!(rows, task.rows, "DP row ranges are explicit, already clamped");
        for f in task.features.clone() {
            for r in rows.clone() {
                seen[(j * m + f) * 60 + r] += 1;
            }
        }
    }
    for (j, &len) in job_lens.iter().enumerate() {
        for f in 0..m {
            for r in 0..60 {
                let want = u32::from(r < len);
                assert_eq!(
                    seen[(j * m + f) * 60 + r],
                    want,
                    "cell (job {j}, feature {f}, row {r}) covered wrong number of times"
                );
            }
        }
    }
}

/// Every ⟨job, feature, bin⟩ cell exactly once — including zero-row jobs
/// (MP owns the write region; an empty scan still zeroes its lanes).
fn check_exclusive(plan: &BlockPlan, shape: &BatchShape, job_lens: &[usize]) {
    let m = shape.n_features;
    let b = shape.max_bins;
    let mut seen = vec![0u32; job_lens.len() * m * b];
    for task in plan.tasks() {
        assert_eq!(task.rows, BlockTask::ALL_ROWS, "MP tasks scan whole nodes");
        let bins = task.bins.map_or(0..b, |(lo, hi)| lo..hi.min(b));
        for j in task.jobs.clone() {
            for f in task.features.clone() {
                for bin in bins.clone() {
                    seen[(j * m + f) * b + bin] += 1;
                }
            }
        }
    }
    assert!(
        seen.iter().all(|&c| c == 1),
        "exclusive plan must cover every (job, feature, bin) cell exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn replicated_plans_partition_the_cube(
        (shape, job_lens) in shape_and_jobs(),
        cfg in config(),
    ) {
        let mut plan = BlockPlan::new();
        plan.rebuild(&cfg, &shape, &job_lens, Accumulation::Replicated);
        prop_assert_eq!(plan.accumulation(), Some(Accumulation::Replicated));
        prop_assert_eq!(plan.extents().auto, cfg.is_auto());
        check_replicated(&plan, &shape, &job_lens);
    }

    #[test]
    fn exclusive_plans_partition_the_cube(
        (shape, job_lens) in shape_and_jobs(),
        cfg in config(),
    ) {
        let mut plan = BlockPlan::new();
        plan.rebuild(&cfg, &shape, &job_lens, Accumulation::Exclusive);
        prop_assert_eq!(plan.accumulation(), Some(Accumulation::Exclusive));
        check_exclusive(&plan, &shape, &job_lens);
    }

    #[test]
    fn feature_blocks_partition_features(m in 1usize..40, f_blk in 0usize..50) {
        let mut next = 0usize;
        for r in feature_blocks(m, f_blk) {
            // Blocks must be contiguous, non-empty, and cover 0..m.
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end > r.start, "blocks are non-empty");
            next = r.end;
        }
        prop_assert_eq!(next, m);
    }

    #[test]
    fn round_stats_accumulate_and_reset(
        (shape, job_lens) in shape_and_jobs(),
        cfg in config(),
    ) {
        let mut plan = BlockPlan::new();
        plan.rebuild(&cfg, &shape, &job_lens, Accumulation::Exclusive);
        let n1 = plan.tasks().len() as u64;
        plan.rebuild(&cfg, &shape, &job_lens, Accumulation::Exclusive);
        let (batches, tasks, ext) = plan.take_round_stats();
        prop_assert_eq!(batches, 2);
        prop_assert_eq!(tasks, 2 * n1);
        prop_assert_eq!(ext, plan.extents());
        // Take must reset the round counters.
        let (batches, tasks, _) = plan.take_round_stats();
        prop_assert_eq!((batches, tasks), (0, 0));
    }
}
