//! Objective-layer contract tests spanning the whole registry:
//!
//! * finite-difference validation of each objective's analytic `(g, h)`
//!   against numeric derivatives of its reference loss;
//! * serde round-trips for every registered spec, including through a
//!   saved model file;
//! * gradient dispatch over the full registry with no panic path (the
//!   regression the trait split exists to prevent: the old scalar
//!   `LossKind::grad` panicked for softmax);
//! * parse/name round-trips and registry-derived error messages.

use harp_data::workloads;
use harpgbdt::objective::{compute_gradients_group, registry_names, REGISTRY};
use harpgbdt::{GbdtTrainer, GradScope, GradientFn, LossKind, RowScaling, TrainParams};
use serde::{Deserialize, Serialize};

/// One spec per registry entry; a length mismatch means an objective was
/// added without extending these tests.
fn all_specs() -> Vec<LossKind> {
    let specs = vec![
        LossKind::Logistic,
        LossKind::SquaredError,
        LossKind::Softmax { n_classes: 3 },
        LossKind::Quantile { alpha: 0.9 },
        LossKind::Tweedie { power: 1.5 },
        LossKind::Huber { delta: 2.0 },
        LossKind::LambdaRank { k: 10 },
    ];
    assert_eq!(specs.len(), REGISTRY.len(), "cover every registered objective");
    specs
}

/// The raw analytic pair straight off the objective, bypassing the
/// driver's Hessian floor and row scaling.
fn raw_gh(spec: LossKind, scores: &[f32], label: f32, group: usize) -> [f32; 2] {
    let obj = spec.build();
    let pair = match obj.gradients() {
        GradientFn::RowWise(rw) => rw.grad(scores, label, group),
        GradientFn::Listwise(_) => panic!("{:?} is not row-wise", spec),
    };
    pair
}

/// Central finite differences of a scalar reference loss: `g ≈ L'`,
/// `h ≈ L''`.
fn fd(loss: impl Fn(f64) -> f64, s: f64) -> (f64, f64) {
    let e = 1e-4;
    let g = (loss(s + e) - loss(s - e)) / (2.0 * e);
    let h = (loss(s + e) - 2.0 * loss(s) + loss(s - e)) / (e * e);
    (g, h)
}

fn close(a: f64, b: f64, tol: f64, what: &str) {
    assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{what}: analytic {a} vs numeric {b}");
}

#[test]
fn logistic_gradients_match_finite_differences() {
    for &y in &[0.0f32, 1.0] {
        for &s in &[-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let [g, h] = raw_gh(LossKind::Logistic, &[s], y, 0);
            let loss = |t: f64| (1.0 + t.exp()).ln() - f64::from(y) * t;
            let (gn, hn) = fd(loss, f64::from(s));
            close(f64::from(g), gn, 1e-3, "logistic g");
            close(f64::from(h), hn, 1e-3, "logistic h");
        }
    }
}

#[test]
fn squared_error_gradients_match_finite_differences() {
    for &(y, s) in &[(0.0f32, 1.5f32), (3.0, -2.0), (-1.0, -1.0)] {
        let [g, h] = raw_gh(LossKind::SquaredError, &[s], y, 0);
        let loss = |t: f64| 0.5 * (t - f64::from(y)).powi(2);
        let (gn, hn) = fd(loss, f64::from(s));
        close(f64::from(g), gn, 1e-3, "squared g");
        close(f64::from(h), hn, 1e-3, "squared h");
    }
}

#[test]
fn tweedie_gradients_match_finite_differences() {
    let p = 1.5f64;
    for &y in &[0.0f32, 0.5, 3.0] {
        for &s in &[-1.0f32, 0.0, 0.8] {
            let [g, h] = raw_gh(LossKind::Tweedie { power: 1.5 }, &[s], y, 0);
            let loss = |t: f64| {
                -f64::from(y) * ((1.0 - p) * t).exp() / (1.0 - p)
                    + ((2.0 - p) * t).exp() / (2.0 - p)
            };
            let (gn, hn) = fd(loss, f64::from(s));
            close(f64::from(g), gn, 1e-3, "tweedie g");
            close(f64::from(h), hn, 1e-3, "tweedie h");
        }
    }
}

#[test]
fn quantile_gradient_matches_pinball_subgradient() {
    // The pinball loss is piecewise linear: g is the subgradient away from
    // the kink at s = y, and the stand-in Hessian is the conventional 1.
    let alpha = 0.9f32;
    let spec = LossKind::Quantile { alpha };
    for &(y, s) in &[(1.0f32, 3.0f32), (1.0, -2.0), (0.0, 5.0)] {
        let [g, h] = raw_gh(spec, &[s], y, 0);
        let loss = |t: f64| {
            let d = f64::from(y) - t;
            if d >= 0.0 {
                f64::from(alpha) * d
            } else {
                (f64::from(alpha) - 1.0) * d
            }
        };
        let (gn, _) = fd(loss, f64::from(s));
        close(f64::from(g), gn, 1e-3, "quantile g");
        assert_eq!(h, 1.0, "quantile uses a unit stand-in Hessian");
    }
}

#[test]
fn huber_gradient_matches_finite_differences_away_from_the_knee() {
    let delta = 2.0f32;
    let spec = LossKind::Huber { delta };
    // Residuals well inside and well outside the quadratic region.
    for &(y, s) in &[(0.0f32, 0.5f32), (0.0, -1.0), (0.0, 5.0), (0.0, -7.0)] {
        let [g, h] = raw_gh(spec, &[s], y, 0);
        let loss = |t: f64| {
            let r = (t - f64::from(y)).abs();
            let d = f64::from(delta);
            if r <= d {
                0.5 * r * r
            } else {
                d * (r - 0.5 * d)
            }
        };
        let (gn, _) = fd(loss, f64::from(s));
        close(f64::from(g), gn, 1e-3, "huber g");
        assert_eq!(h, 1.0, "huber uses a unit stand-in Hessian");
    }
}

#[test]
fn softmax_gradients_match_finite_differences() {
    let spec = LossKind::Softmax { n_classes: 3 };
    let scores = [0.3f32, -1.2, 0.9];
    for label in 0..3 {
        for group in 0..3 {
            let [g, h] = raw_gh(spec, &scores, label as f32, group);
            // Reference: cross-entropy of the softmax as a function of the
            // perturbed group's score.
            let loss = |t: f64| {
                let mut s: Vec<f64> = scores.iter().map(|&v| f64::from(v)).collect();
                s[group] = t;
                let z: f64 = s.iter().map(|v| v.exp()).sum();
                z.ln() - s[label]
            };
            let (gn, _) = fd(loss, f64::from(scores[group]));
            close(f64::from(g), gn, 1e-3, "softmax g");
            // The booster's softmax Hessian is the conventional scaled
            // 2·p·(1−p), not the raw second derivative p·(1−p).
            let z: f64 = scores.iter().map(|&v| f64::from(v).exp()).sum();
            let p = f64::from(scores[group]).exp() / z;
            close(f64::from(h), 2.0 * p * (1.0 - p), 1e-3, "softmax h");
        }
    }
}

#[test]
fn lambdarank_two_document_closed_form() {
    // One query, two documents, misranked: rel [1, 0], scores [0, 1].
    // gains (1, 0), discounts (1, 1/log2(3)), idcg = 1, so
    // Δndcg = 1 − 1/log2(3). The pair weight is the logistic of the score
    // gap, ρ = 1/(1+e^{s_hi−s_lo}) = 1/(1+e^{−1}) — large because the
    // pair is misranked.
    let obj = LossKind::LambdaRank { k: 10 }.build();
    let GradientFn::Listwise(lw) = obj.gradients() else {
        panic!("lambdarank must be listwise");
    };
    let mut out = [[0.0f32; 2]; 2];
    lw.grads(&GradScope { preds: &[0.0, 1.0], labels: &[1.0, 0.0], query_groups: &[2] }, &mut out);
    let delta_ndcg = 1.0 - 1.0 / 3.0f64.log2();
    let rho = 1.0 / (1.0 + (-1.0f64).exp());
    let lambda = (rho * delta_ndcg) as f32;
    let hess = (rho * (1.0 - rho) * delta_ndcg) as f32;
    assert!((out[0][0] + lambda).abs() < 1e-5, "doc0 pulled up: {:?}", out);
    assert!((out[1][0] - lambda).abs() < 1e-5, "doc1 pushed down: {:?}", out);
    assert!((out[0][1] - hess).abs() < 1e-5 && (out[1][1] - hess).abs() < 1e-5);
    // Invariant: per-query lambdas cancel.
    assert!((out[0][0] + out[1][0]).abs() < 1e-6);
}

#[test]
fn every_registered_spec_serde_round_trips() {
    for spec in all_specs() {
        let v = spec.to_value();
        let back = LossKind::from_value(&v).expect("round-trip");
        assert_eq!(back, spec, "serde round-trip of {spec:?}");
    }
}

#[test]
fn classic_variant_names_stay_serde_stable() {
    // Saved models from before the Objective trait carry these exact
    // names; renaming a variant would orphan them.
    let json = serde_json::to_string(&LossKind::Logistic).expect("serialize");
    assert!(json.contains("Logistic"), "{json}");
    let json = serde_json::to_string(&LossKind::Softmax { n_classes: 3 }).expect("serialize");
    assert!(json.contains("Softmax") && json.contains("n_classes"), "{json}");
}

#[test]
fn saved_models_keep_their_objective() {
    for spec in all_specs() {
        let (data, trees) = match spec {
            LossKind::LambdaRank { .. } => (workloads::ranking_queries(20, 10, 4, 5), 3),
            LossKind::Tweedie { .. } => (workloads::tweedie_claims(200, 4, 5), 3),
            LossKind::Logistic | LossKind::Softmax { .. } => {
                let mut d = workloads::huber_sensor(200, 4, 5);
                let classes = spec.n_groups().max(2) as f32;
                for (i, y) in d.labels.iter_mut().enumerate() {
                    *y = (i % classes as usize) as f32;
                }
                (d, 2)
            }
            _ => (workloads::huber_sensor(200, 4, 5), 3),
        };
        let params = TrainParams {
            n_trees: trees,
            tree_size: 3,
            loss: spec,
            n_threads: 2,
            ..TrainParams::default()
        };
        let out = GbdtTrainer::new(params).expect("valid params").train(&data);
        let path = std::env::temp_dir()
            .join(format!("harp-objective-{}.json", spec.name().replace(':', "-")));
        out.model.save(&path).expect("save");
        let loaded = harpgbdt::GbdtModel::load(&path).expect("load");
        assert_eq!(loaded.loss(), spec, "objective survives save/load");
        assert_eq!(
            loaded.predict_raw(&data.features),
            out.model.predict_raw(&data.features),
            "reloaded model predicts identically"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn gradient_dispatch_covers_the_registry_without_panicking() {
    // The old enum had a scalar `grad` that panicked for softmax. The
    // trait split must leave no input that reaches a panic: every spec
    // computes gradients for every one of its groups here.
    let pool = harp_parallel::ThreadPool::new(2);
    let n = 50usize;
    let labels: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();
    let groups: Vec<u32> = vec![10; 5];
    for spec in all_specs() {
        let g = spec.n_groups();
        let preds = vec![0.1f32; n * g];
        let obj = spec.build();
        let qg = match obj.gradients() {
            GradientFn::Listwise(_) => Some(&groups[..]),
            GradientFn::RowWise(_) => None,
        };
        let mut out = vec![[0.0f32; 2]; n];
        for group in 0..g {
            compute_gradients_group(
                obj.as_ref(),
                &pool,
                &preds,
                &labels,
                qg,
                group,
                &RowScaling::default(),
                &mut out,
            );
            assert!(
                out.iter().all(|p| p[0].is_finite() && p[1] > 0.0),
                "{spec:?} group {group}: finite g, floored h"
            );
        }
    }
}

#[test]
fn parse_and_name_round_trip() {
    for spec in all_specs() {
        let round = LossKind::parse(&spec.name()).expect("canonical name parses");
        assert_eq!(round, spec, "parse(name()) round-trip");
    }
    // Registry syntaxes parse too (parameterized ones via their defaults).
    for info in REGISTRY {
        if info.name == "softmax" {
            assert!(LossKind::parse("softmax:3").is_ok());
        } else {
            assert!(LossKind::parse(info.name).is_ok(), "bare {} parses", info.name);
        }
    }
}

#[test]
fn max_delta_step_caps_per_tree_leaf_contributions() {
    // The outlier-heavy sensor workload drives big Newton steps; with the
    // cap on, every raw prediction must stay within
    // base ± n_trees · lr · cap, and without it some row must escape that
    // envelope (proving the cap actually binds).
    let data = workloads::huber_sensor(600, 4, 9);
    let (n_trees, lr, cap) = (10usize, 0.5f32, 0.05f64);
    let train = |max_delta_step: f64| {
        let params = TrainParams {
            n_trees,
            tree_size: 3,
            learning_rate: lr,
            max_delta_step,
            loss: LossKind::SquaredError,
            n_threads: 1,
            ..TrainParams::default()
        };
        GbdtTrainer::new(params).expect("valid params").train(&data)
    };
    let base = f64::from(LossKind::SquaredError.base_scores(&data.labels)[0]);
    let bound = n_trees as f64 * f64::from(lr) * cap + 1e-6;
    let capped = train(cap).model.predict_raw(&data.features);
    assert!(
        capped.iter().all(|&p| (f64::from(p) - base).abs() <= bound),
        "capped predictions must stay within the step envelope"
    );
    let free = train(0.0).model.predict_raw(&data.features);
    assert!(
        free.iter().any(|&p| (f64::from(p) - base).abs() > bound),
        "uncapped training must exceed the envelope on this workload"
    );
}

#[test]
fn unknown_loss_error_lists_the_whole_registry() {
    let err = LossKind::parse("zero-one").unwrap_err();
    for info in REGISTRY {
        assert!(err.contains(info.syntax), "error must mention {}: {err}", info.syntax);
    }
    assert!(err.contains(&registry_names()));
}
