//! Equivalence properties of the flattened inference engine: for *any*
//! random forest and input matrix, the blocked [`FlatForest`] kernels must
//! be bitwise identical to the per-row recursive reference
//! ([`Tree::predict`] summed in ensemble order), across dense and sparse
//! inputs, missing values, multiclass grouping, block sizes, thread
//! counts, and the binned fast path. Plus: the trainer's incremental
//! validation rescoring must land on exactly the metric a full-model
//! rescore computes.

use harp_binning::{BinningConfig, QuantizedMatrix};
use harp_data::{CsrMatrix, Dataset, DatasetKind, DenseMatrix, FeatureMatrix, SynthConfig};
use harp_parallel::ThreadPool;
use harpgbdt::trainer::{EvalMetric, EvalOptions};
use harpgbdt::{
    FlatForest, GbdtTrainer, LossKind, NodeStats, Predictor, SplitData, TrainParams, Tree,
};
use proptest::prelude::*;

/// Deterministic xorshift generator; proptest drives diversity via seeds.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform-ish value in [-1, 1].
    fn unit(&mut self) -> f32 {
        (self.next() % 2001) as f32 / 1000.0 - 1.0
    }
}

fn grow(tree: &mut Tree, node: u32, depth: u32, n_features: u32, rng: &mut Rng) {
    if depth == 0 || rng.next() % 4 == 0 {
        tree.node_mut(node).weight = rng.unit();
        return;
    }
    let split = SplitData {
        feature: (rng.next() % u64::from(n_features)) as u32,
        bin: (rng.next() % 16) as u8,
        threshold: rng.unit(),
        default_left: rng.next() % 2 == 0,
        gain: 1.0,
    };
    let stats = NodeStats { g: 0.0, h: 1.0, count: 1 };
    let (l, r) = tree.apply_split(node, split, stats, stats);
    grow(tree, l, depth - 1, n_features, rng);
    grow(tree, r, depth - 1, n_features, rng);
}

fn random_tree(n_features: u32, rng: &mut Rng) -> Tree {
    let mut tree = Tree::new_root(NodeStats { g: 0.0, h: 1.0, count: 1 });
    grow(&mut tree, 0, 1 + (rng.next() % 4) as u32, n_features, rng);
    tree
}

/// A random forest (`rounds` boosting rounds of `groups` trees each),
/// returned both compiled and as the source trees for the reference.
fn random_forest(
    seed: u64,
    n_features: u32,
    rounds: usize,
    multiclass: bool,
) -> (FlatForest, Vec<Tree>) {
    let mut rng = Rng::new(seed);
    let (groups, loss) = if multiclass {
        (3usize, LossKind::Softmax { n_classes: 3 })
    } else {
        (1usize, LossKind::Logistic)
    };
    let trees: Vec<Tree> =
        (0..rounds * groups).map(|_| random_tree(n_features, &mut rng)).collect();
    let base: Vec<f32> = (0..groups).map(|_| rng.unit()).collect();
    let forest = FlatForest::from_trees(&trees, base, loss, n_features as usize);
    (forest, trees)
}

/// Dense matrix in [-1, 1] with ~1-in-5 missing entries, plus the same
/// data as CSR (absent where the dense side is NaN).
fn random_matrices(seed: u64, n_rows: usize, n_features: usize) -> (FeatureMatrix, FeatureMatrix) {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9) | 1);
    let mut values = Vec::with_capacity(n_rows * n_features);
    let mut rows: Vec<Vec<(u32, f32)>> = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut row = Vec::new();
        for f in 0..n_features {
            if rng.next() % 5 == 0 {
                values.push(f32::NAN);
            } else {
                let v = rng.unit();
                values.push(v);
                row.push((f as u32, v));
            }
        }
        rows.push(row);
    }
    let dense = FeatureMatrix::Dense(DenseMatrix::from_vec(n_rows, n_features, values));
    let sparse = FeatureMatrix::Sparse(CsrMatrix::from_rows(n_features, &rows));
    (dense, sparse)
}

/// Per-row recursive reference: base scores plus every tree's leaf weight,
/// accumulated in ensemble order (the contract `FlatForest` must match
/// bitwise).
fn recursive_reference(trees: &[Tree], base: &[f32], m: &FeatureMatrix, n_rows: usize) -> Vec<f32> {
    let groups = base.len();
    let mut out = vec![0.0f32; n_rows * groups];
    for r in 0..n_rows {
        out[r * groups..(r + 1) * groups].copy_from_slice(base);
        for (t, tree) in trees.iter().enumerate() {
            out[r * groups + t % groups] += tree.predict(|f| m.get(r, f as usize));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense, sparse, any block size, and any thread count all reproduce
    /// the recursive reference bitwise.
    #[test]
    fn flat_forest_is_bitwise_identical_to_recursive(
        seed in any::<u64>(),
        n_rows in 1usize..50,
        n_features in 1u32..6,
        rounds in 1usize..4,
        multiclass in any::<bool>(),
        block in 1usize..80,
        threads in 2usize..5,
    ) {
        let (forest, trees) = random_forest(seed, n_features, rounds, multiclass);
        let (dense, sparse) = random_matrices(seed, n_rows, n_features as usize);
        let expect = recursive_reference(&trees, forest.base_scores(), &dense, n_rows);

        prop_assert_eq!(&forest.predict_raw(&dense), &expect);
        prop_assert_eq!(&forest.predict_raw(&sparse), &expect);
        prop_assert_eq!(
            &Predictor::new(&forest).block_rows(block).predict_raw(&dense),
            &expect
        );
        let pool = ThreadPool::new(threads);
        prop_assert_eq!(&forest.predict_raw_parallel(&dense, &pool), &expect);
        prop_assert_eq!(&forest.predict_raw_parallel(&sparse, &pool), &expect);
    }

    /// The quantized fast path routes exactly like per-row traversal on
    /// the same bins (the trainer's partition predicate).
    #[test]
    fn binned_path_matches_per_row_bin_routing(
        seed in any::<u64>(),
        n_rows in 1usize..40,
        n_features in 1u32..5,
        rounds in 1usize..4,
    ) {
        let mut rng = Rng::new(seed);
        let trees: Vec<Tree> =
            (0..rounds).map(|_| random_tree(n_features, &mut rng)).collect();
        let base = rng.unit();
        let forest =
            FlatForest::from_trees(&trees, vec![base], LossKind::Logistic, n_features as usize);
        let (dense, _) = random_matrices(seed, n_rows, n_features as usize);
        let qm = QuantizedMatrix::from_matrix(&dense, BinningConfig::default());

        let got = forest.predict_raw_binned(&qm);
        for (r, &score) in got.iter().enumerate() {
            let mut expect = base;
            for tree in &trees {
                let mut id = 0u32;
                let weight = loop {
                    let node = tree.node(id);
                    let Some(split) = &node.split else { break node.weight };
                    let go_left = match qm.bin(r, split.feature as usize) {
                        Some(b) => b <= split.bin,
                        None => split.default_left,
                    };
                    id = if go_left { node.left } else { node.right };
                };
                expect += weight;
            }
            prop_assert_eq!(score, expect);
        }
    }
}

/// Trains with per-round validation and checks the final trace metric is
/// *exactly* the metric of rescoring the finished model from scratch —
/// i.e. the trainer's incremental flat-kernel rescoring accumulates the
/// same f32s as a full batch predict.
#[test]
fn incremental_eval_equals_full_rescore_binary() {
    let data = SynthConfig::new(DatasetKind::HiggsLike, 5).with_scale(0.05).generate();
    let (train, valid) = data.split(0.25, 5);
    let params = TrainParams { n_trees: 12, tree_size: 4, n_threads: 2, ..TrainParams::default() };
    let out = GbdtTrainer::new(params).expect("valid params").train_with_eval(
        &train,
        Some(EvalOptions {
            data: &valid,
            metric: EvalMetric::Auc,
            every: 1,
            early_stopping_rounds: None,
        }),
    );
    let trace = out.diagnostics.trace.expect("trace recorded");
    let last = trace.points().last().expect("at least one eval").metric;
    let full = harp_metrics::auc(&valid.labels, &out.model.predict_raw(&valid.features));
    assert_eq!(last, full, "incremental rescoring must equal a full rescore");
}

#[test]
fn incremental_eval_equals_full_rescore_multiclass() {
    let mut rng = Rng::new(99);
    let n = 400;
    let n_features = 6;
    let mut values = Vec::with_capacity(n * n_features);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let class = (rng.next() % 3) as usize;
        for f in 0..n_features {
            let bump = if f % 3 == class { 0.5 } else { 0.0 };
            values.push(rng.unit() * 0.3 + bump);
        }
        labels.push(class as f32);
    }
    let data = Dataset::new(
        "softmax-equivalence",
        FeatureMatrix::Dense(DenseMatrix::from_vec(n, n_features, values)),
        labels,
    );
    let (train, valid) = data.split(0.25, 9);
    let params = TrainParams {
        loss: LossKind::Softmax { n_classes: 3 },
        n_trees: 6,
        tree_size: 3,
        n_threads: 2,
        ..TrainParams::default()
    };
    let out = GbdtTrainer::new(params).expect("valid params").train_with_eval(
        &train,
        Some(EvalOptions {
            data: &valid,
            metric: EvalMetric::MulticlassLogLoss,
            every: 1,
            early_stopping_rounds: None,
        }),
    );
    let trace = out.diagnostics.trace.expect("trace recorded");
    let last = trace.points().last().expect("at least one eval").metric;
    let probs = out.model.loss().transform_scores(&out.model.predict_raw(&valid.features));
    let full = harp_metrics::multiclass_log_loss(&valid.labels, &probs, 3);
    assert_eq!(last, full, "incremental rescoring must equal a full rescore");
}

/// Regression for the width footgun: a matrix narrower than the model
/// must trip the shared `check_features` guard instead of silently
/// routing on the wrong cells. (Serving exposed this: `TrainParams`
/// never sees prediction-time inputs, so the predictor itself must own
/// the check.)
#[test]
#[should_panic(expected = "feature count mismatch")]
fn narrow_dense_matrix_is_rejected() {
    let (forest, _) = random_forest(7, 8, 2, false);
    let narrow = FeatureMatrix::Dense(DenseMatrix::filled_missing(4, 7));
    let _ = Predictor::new(&forest).predict_raw(&narrow);
}

#[test]
#[should_panic(expected = "feature count mismatch")]
fn narrow_bin_rows_are_rejected() {
    let (forest, _) = random_forest(8, 8, 2, false);
    let bins = vec![0u8; 4 * 7];
    let rows = harpgbdt::predict::BinRows::new(4, 7, &bins);
    let _ = Predictor::new(&forest).predict_raw_bin_rows(&rows);
}

/// Wider-than-model inputs keep working: extra columns are ignored.
#[test]
fn wide_dense_matrix_still_scores() {
    let (forest, trees) = random_forest(9, 8, 2, false);
    let n_rows = 16;
    let (wide, _) = random_matrices(77, n_rows, 11);
    let got = Predictor::new(&forest).predict_raw(&wide);
    let expect = recursive_reference(&trees, forest.base_scores(), &wide, n_rows);
    assert_eq!(got, expect, "extra columns must not change routing");
}
