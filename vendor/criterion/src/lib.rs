//! Vendored, registry-free micro-benchmark harness exposing the slice of
//! `criterion` 0.5 this workspace uses: `criterion_group!`/
//! `criterion_main!`, benchmark groups with `sample_size`,
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`,
//! `BenchmarkId` and `black_box`.
//!
//! Measurement is real but deliberately lightweight: each benchmark is
//! calibrated once, then timed over `sample_size` samples and reported as
//! `[min median max]` per iteration, in criterion's output format so the
//! numbers remain comparable across runs.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per sample after calibration.
const SAMPLE_TARGET: Duration = Duration::from_millis(5);

/// How inputs are passed to `iter_batched` routines. Only a marker here —
/// the vendored harness always rebuilds inputs per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterized benchmark: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{parameter}", function.into()) }
    }
}

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Runs `setup -> routine` pairs, timing only the routine.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level harness handle.
pub struct Criterion {
    filters: Vec<String>,
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { filters: Vec::new(), enabled: true }
    }
}

impl Criterion {
    /// Builds a harness configured from the process arguments (`--test`
    /// disables measurement; bare arguments act as substring filters, as
    /// under `cargo bench <filter>`).
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Self::default();
        let mut skip_value = false;
        for arg in std::env::args().skip(1) {
            if skip_value {
                skip_value = false;
                continue;
            }
            match arg.as_str() {
                "--test" | "--list" => c.enabled = false,
                "--bench" | "--quiet" | "--verbose" | "--exact" | "--nocapture" => {}
                a if a.starts_with("--") => {
                    // Unknown `--flag value` pairs: drop the value too.
                    skip_value = !a.contains('=');
                }
                filter => c.filters.push(filter.to_string()),
            }
        }
        c
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { harness: self, name: name.into(), sample_size: 50 }
    }

    /// Benchmarks a single ungrouped function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self, id, 50, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.enabled && (self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f)))
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group-name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.harness, &full, self.sample_size, f);
        self
    }

    /// Benchmarks `f(b, input)` under `group-name/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(self.harness, &full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (report-flush point in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    harness: &Criterion,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    if !harness.matches(id) {
        return;
    }
    // Calibration: find an iteration count filling SAMPLE_TARGET.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let min = samples[0];
    let med = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!("{id:<50} time:   [{} {} {}]", format_time(min), format_time(med), format_time(max));
}

/// Formats seconds with criterion's unit scaling.
fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.4} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.4} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.4} ms", secs * 1e3)
    } else {
        format!("{secs:.4} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| x * x);
        });
        group.finish();
    }

    #[test]
    fn benchmarks_run_and_measure() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        c.bench_function("top-level", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        });
    }

    #[test]
    fn filters_skip_non_matching() {
        let c = Criterion { filters: vec!["abc".into()], enabled: true };
        assert!(c.matches("x/abc/y"));
        assert!(!c.matches("x/def/y"));
        let disabled = Criterion { filters: vec![], enabled: false };
        assert!(!disabled.matches("anything"));
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.5e-9).contains("ns"));
        assert!(format_time(2.5e-6).contains("µs"));
        assert!(format_time(2.5e-3).contains("ms"));
        assert!(format_time(2.5).contains(" s"));
    }
}
