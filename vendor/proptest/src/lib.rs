//! Vendored, registry-free property-testing harness with the shape of
//! `proptest`'s API: the `proptest!` macro, range/tuple/`prop_map`
//! strategies, `prop::collection::vec`, `prop::num::f32::ANY`, `any::<T>()`
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Unlike the real crate it does no shrinking and drives each test with a
//! deterministic per-test seed derived from the test name and case index —
//! failures therefore reproduce exactly on re-run with no persistence
//! files.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// A failed property, carrying the formatted assertion message.
#[derive(Debug)]
pub struct TestCaseError {
    /// What went wrong.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+),)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
}

/// Types with a whole-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty => $via:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$via>() as $t
            }
        }
    )*};
}

arb_int!(u8 => u8, u16 => u64, u32 => u32, u64 => u64, usize => usize,
         i8 => u8, i16 => u64, i32 => u32, i64 => u64, isize => usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.gen::<u32>())
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.gen::<u64>())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// `prop::collection`: container strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Vector of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.start + 1 >= self.size.end {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::num`: numeric special strategies.
pub mod num {
    /// f32 strategies.
    pub mod f32 {
        use crate::{Strategy, TestRng};
        use rand::Rng;

        /// Any bit pattern, including infinities and NaN.
        pub struct AnyF32;

        /// The full-domain f32 strategy.
        pub const ANY: AnyF32 = AnyF32;

        impl Strategy for AnyF32 {
            type Value = f32;

            fn generate(&self, rng: &mut TestRng) -> f32 {
                // Bias towards special values now and then so properties
                // about NaN handling actually get exercised.
                match rng.gen_range(0..8u32) {
                    0 => [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0]
                        [rng.gen_range(0..5usize)],
                    _ => f32::from_bits(rng.gen::<u32>()),
                }
            }
        }
    }
}

/// Builds the deterministic generator for one test case.
#[must_use]
pub fn rng_for(test_path: &str, case: u32) -> TestRng {
    TestRng::seed_from_u64(seed_for(test_path, case))
}

/// Derives the per-test base seed from its fully qualified name.
#[must_use]
pub fn seed_for(test_path: &str, case: u32) -> u64 {
    // FNV-1a over the path, mixed with the case index.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9e3779b97f4a7c15))
}

/// Everything tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// The `prop::` module namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

/// Defines property tests. Each `fn` runs `config.cases` deterministic
/// cases; generator expressions are evaluated once per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let path = concat!(module_path!(), "::", stringify!($name));
                let seed = $crate::seed_for(path, case);
                let mut proptest_rng = $crate::rng_for(path, case);
                let ($($arg,)+) = (
                    $($crate::Strategy::generate(&($strat), &mut proptest_rng),)+
                );
                let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "property `{}` failed at case {case} (seed {seed:#x}): {}",
                        stringify!($name),
                        e.message
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Fails the enclosing property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..5, 0u32..5).prop_map(|(a, b)| a + b),
            mut v in prop::collection::vec(0u8..3, 1..20),
        ) {
            prop_assert!(pair <= 8);
            prop_assert!(!v.is_empty() && v.len() < 20);
            v.sort_unstable();
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #[test]
        fn any_f32_sometimes_hits_nan(values in prop::collection::vec(prop::num::f32::ANY, 200..201)) {
            // Not a per-case guarantee, just exercise generation.
            prop_assert_eq!(values.len(), 200);
        }
    }

    proptest! {
        // No #[test] here: invoked via `failures_panic_with_context` below.
        fn failing_property(x in 0u32..10) {
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    #[should_panic(expected = "property `failing_property` failed")]
    fn failures_panic_with_context() {
        failing_property();
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(crate::seed_for("a::b", 3), crate::seed_for("a::b", 3));
        assert_ne!(crate::seed_for("a::b", 3), crate::seed_for("a::b", 4));
        assert_ne!(crate::seed_for("a::b", 3), crate::seed_for("a::c", 3));
    }
}
