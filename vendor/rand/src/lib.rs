//! Vendored, registry-free replacement for the parts of `rand` 0.8 this
//! workspace uses: seedable generators (`StdRng`, `SmallRng`), the
//! `Rng::gen`/`gen_range`/`gen_bool` sampling methods, and
//! `seq::SliceRandom::shuffle`.
//!
//! Both generators are xoshiro256++ seeded through SplitMix64 — not the
//! same streams as the real crate, but the workspace only relies on
//! determinism-per-seed and statistical quality, never on exact values.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits (upper half of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from the system clock and a counter.
    fn from_entropy() -> Self {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0x9e3779b97f4a7c15, |d| d.as_nanos() as u64);
        Self::seed_from_u64(nanos)
    }
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as rand does for seed_from_u64.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    macro_rules! wrap_rng {
        ($(#[$doc:meta] $name:ident),*) => {$(
            #[$doc]
            #[derive(Debug, Clone)]
            pub struct $name(Xoshiro256);

            impl RngCore for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    Self(Xoshiro256::from_u64(seed))
                }
            }
        )*};
    }

    wrap_rng! {
        /// The default heavyweight generator.
        StdRng,
        /// The small/fast generator (identical here).
        SmallRng
    }
}

/// Types samplable uniformly from a generator (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; bias is < span / 2^64.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// The user-facing sampling interface, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice utilities, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = ((rng.next_u64() as u128 * span) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| {
                let x: f32 = rng.gen();
                assert!((0.0..1.0).contains(&x));
                f64::from(x)
            })
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
            let x: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&y));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, (0..100).collect::<Vec<u32>>());
    }
}
