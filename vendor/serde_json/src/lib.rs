//! Vendored, registry-free JSON serializer/deserializer over the
//! `vendor/serde` [`Value`] data model.
//!
//! Covers the API surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and [`Error`]. Behaviour matches
//! serde_json where the repo depends on it: floats print with enough
//! digits to round-trip, non-finite floats serialize as `null`, and `null`
//! reads back as NaN for float targets.

use serde::{Deserialize, Serialize, Value};

/// JSON error: a message, optionally with an input offset.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for the supported data model; kept fallible for serde_json
/// signature compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the supported data model; kept fallible for serde_json
/// signature compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
///
/// # Errors
/// Returns the first syntax or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest digits that round-trip and
                // keeps a `.0` on integral values, like serde_json.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at offset {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{kw}` at offset {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at offset {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    Error::new(format!("bad \\u escape at offset {}", self.pos))
                                })?;
                            // Surrogate pairs are not needed for the
                            // identifiers this workspace serializes.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new(format!("bad escape at offset {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}` at offset {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Obj(vec![
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Value::Arr(vec![Value::U64(1), Value::F64(-0.5), Value::Null, Value::Bool(true)]),
            ),
            ("neg".to_string(), Value::I64(-3)),
        ]);
        let text = to_string(&Wrapper(v.clone())).unwrap();
        let back: Wrapper = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn pretty_uses_two_space_indent_and_colon_space() {
        let v = Value::Obj(vec![("title".to_string(), Value::Str("demo".to_string()))]);
        let text = to_string_pretty(&Wrapper(v)).unwrap();
        assert!(text.contains("\"title\": \"demo\""), "{text}");
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1f64, 1.0, -2.5e-7, f64::MAX, 1e30] {
            let text = to_string(&Wrapper(Value::F64(x))).unwrap();
            let Wrapper(back) = from_str(&text).unwrap();
            assert_eq!(back, Value::F64(x), "{text}");
        }
    }

    /// Test helper carrying a raw `Value` through the trait interface.
    #[derive(Debug, PartialEq, Clone)]
    struct Wrapper(Value);

    impl Serialize for Wrapper {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for Wrapper {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(Wrapper(v.clone()))
        }
    }
}
