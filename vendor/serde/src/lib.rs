//! Vendored, registry-free replacement for the `serde` facade.
//!
//! The build environment has no crates.io access, so this workspace carries
//! a small data-model crate that exposes the subset of serde the repo
//! actually uses: `derive(Serialize, Deserialize)` on plain structs and
//! (unit or struct-variant) enums, serialized through `serde_json`. The
//! data model is a single JSON-shaped [`Value`] tree rather than serde's
//! visitor architecture — `serde_json` is the only format in the workspace,
//! so the indirection would buy nothing.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value: the entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; a vec keeps declaration order in the output.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Views an object's fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Views array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view (integers widen; `null` reads as NaN like serde_json
    /// round-trips of non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }
}

/// Serialization/deserialization error: a message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    /// Returns a message describing the first shape mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The replacement when a struct field is absent; `None` means absence
    /// is an error. `Option<T>` overrides this so missing fields read as
    /// `None`, matching serde's derive.
    fn missing() -> Option<Self> {
        None
    }
}

/// Looks up struct field `name` in `obj` and deserializes it; used by the
/// derive macro.
///
/// # Errors
/// Propagates element errors; missing fields error unless the target type
/// tolerates absence (`Option`).
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::missing().ok_or_else(|| Error::new(format!("missing field `{name}`"))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::U64(n) => <$t>::try_from(n).ok(),
                    Value::I64(n) => <$t>::try_from(n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error::new(concat!("expected ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() {
                    Value::F64(x)
                } else {
                    // serde_json writes non-finite floats as null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::new(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_arr().ok_or_else(|| Error::new("expected tuple array"))?;
                Ok(($($t::from_value(
                    items.get($n).ok_or_else(|| Error::new("tuple too short"))?,
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_reads_none() {
        let obj = [("a".to_string(), Value::U64(3))];
        let got: Option<u32> = field(&obj, "b").unwrap();
        assert_eq!(got, None);
        let err: Result<u32, _> = field(&obj, "b");
        assert!(err.is_err());
    }

    #[test]
    fn floats_widen_exactly() {
        let x = 0.1f32;
        let v = x.to_value();
        assert_eq!(f32::from_value(&v).unwrap(), x);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(f32::NAN.to_value(), Value::Null);
        assert!(f32::from_value(&Value::Null).unwrap().is_nan());
    }
}
