//! Derive macros for the vendored `serde` facade.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! `Value`-tree data model in `vendor/serde`, by walking the raw
//! `proc_macro` token stream (no `syn`/`quote` — the build has no registry
//! access). Supported shapes are the ones this workspace uses:
//!
//! * structs with named fields;
//! * enums whose variants are unit or struct-like (externally tagged, like
//!   serde: `Unit` → `"Unit"`, `Var { a }` → `{"Var": {"a": ...}}`).
//!
//! `#[serde(...)]` attributes are not supported and will simply be ignored
//! along with every other attribute.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, Vec<String>)> },
}

/// Consumes leading attributes (`#[...]`, including doc comments) and a
/// visibility marker from `toks[*i]`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // pub(crate) / pub(super)
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type,` sequences inside a brace group, returning the field
/// names. Types are skipped by consuming tokens up to the next top-level
/// comma (angle brackets carry no commas at the token-tree top level for
/// the types this workspace uses — generic arguments arrive as separate
/// `<`/`>` puncts, so `Vec<(u32, u32)>` style types need bracket counting).
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Skip the type: angle-bracket depth tracking so commas inside
        // `HashMap<K, V>` or `Vec<(A, B)>` generics don't end the field.
        let mut depth = 0i32;
        while let Some(tok) = toks.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Parses `Unit, Var { a: T },` variant sequences.
fn parse_variants(group: TokenStream) -> Vec<(String, Vec<String>)> {
    let toks: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive: tuple variant `{name}` is not supported")
            }
            _ => Vec::new(),
        };
        variants.push((name, fields));
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported");
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("serde_derive: expected braced body for `{name}`, found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_named_fields(body) },
        "enum" => Item::Enum { name, variants: parse_variants(body) },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// `#[derive(Serialize)]`: emits `impl serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pairs: String = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Obj(vec![{pairs}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    } else {
                        let binds = fields.join(", ");
                        let pairs: String = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Obj(vec![(\
                                 \"{v}\".to_string(), ::serde::Value::Obj(vec![{pairs}])\
                             )]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]`: emits `impl serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String =
                fields.iter().map(|f| format!("{f}: ::serde::field(obj, \"{f}\")?,")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let obj = v.as_obj().ok_or_else(|| \
                             ::serde::Error::new(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::field(inner, \"{f}\")?,"))
                        .collect();
                    format!(
                        "\"{v}\" => {{\n\
                             let inner = payload.as_obj().ok_or_else(|| \
                                 ::serde::Error::new(\"expected object payload for {name}::{v}\"))?;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error::new(format!(\
                                     \"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Obj(o) if o.len() == 1 => {{\n\
                                 let (tag, payload) = (&o[0].0, &o[0].1);\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => Err(::serde::Error::new(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::new(\"expected variant for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}
