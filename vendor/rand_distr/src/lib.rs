//! Vendored, registry-free replacement for the slice of `rand_distr` this
//! workspace uses: [`Normal`] and the [`Distribution`] trait.

use rand::RngCore;

/// Distributions samplable with a generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std^2)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Float scalars the distributions are generic over (`f32`/`f64`), so that
/// `Normal::new(0.0f32, 1.0)` infers the element type from its arguments
/// like the real crate's `Float`-bounded impl.
pub trait Float: Copy + PartialOrd {
    /// Whether the value is finite.
    fn is_finite_f(self) -> bool;
    /// The additive identity.
    fn zero() -> Self;
    /// Narrowing conversion from f64.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to f64.
    fn to_f64(self) -> f64;
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Float for $t {
            fn is_finite_f(self) -> bool {
                self.is_finite()
            }

            fn zero() -> Self {
                0.0
            }

            fn from_f64(x: f64) -> Self {
                x as $t
            }

            fn to_f64(self) -> f64 {
                f64::from(self)
            }
        }
    )*};
}

impl_float!(f32, f64);

impl<F: Float> Normal<F> {
    /// Creates a normal distribution.
    ///
    /// # Errors
    /// Rejects non-finite or negative standard deviations.
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if std_dev.is_finite_f() && std_dev >= F::zero() && mean.is_finite_f() {
            Ok(Self { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; one draw per call keeps `&self` stateless. The first
        // uniform is clamped away from 0 to avoid ln(0).
        let u1 = <f64 as rand::Standard>::draw(rng).max(f64::MIN_POSITIVE);
        let u2 = <f64 as rand::Standard>::draw(rng);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_close() {
        let normal = Normal::new(2.0f64, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
        assert!((var - 9.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn rejects_bad_std() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f32, f32::NAN).is_err());
        assert!(Normal::new(0.0f32, 1.0).is_ok());
    }
}
